//! Crash-safe checkpointing of learning runs.
//!
//! A long anytime run must survive being killed — by an operator, a
//! job scheduler, or a power cut — without losing hours of oracle
//! queries. This module defines [`LearnState`]: an explicit, fully
//! serializable snapshot of everything the [`Learner`](crate::Learner)
//! needs to continue *bit-identically* from a stage boundary:
//!
//! - the partial circuit (as canonical ASCII AIGER, whose import
//!   rebuilds identical node ids and repopulates the structural-hash
//!   table),
//! - per-output progress (learned edges, strategies, support sizes,
//!   forced-leaf counts, per-output wall clock and query counts,
//!   observed truth biases),
//! - the run cursor — either "start the next unfinished output" or a
//!   mid-construction FBDT frontier with its collected onset/offset
//!   cubes,
//! - the RNG state (all four xoshiro256++ words, so every future
//!   sample pair is the one the uninterrupted run would have drawn),
//! - cumulative query and wall-clock totals across all segments, and
//! - the oracle stack's own resume state (fault-injection schedules,
//!   retry-jitter salts) via [`Oracle::checkpoint_state`](cirlearn_oracle::Oracle::checkpoint_state).
//!
//! # File format
//!
//! A checkpoint file is a one-line header followed by a JSON payload:
//!
//! ```text
//! cirlearn-checkpoint v1 fnv64:0123456789abcdef
//! {"seed":"000000000001ccad", ...}
//! ```
//!
//! The checksum is FNV-1a 64 over the exact payload bytes, so a torn,
//! truncated or bit-flipped file is rejected with a typed
//! [`CheckpointError`] — never a panic, never a silent misresume. Files
//! are written atomically (tmp + fsync + rename, via
//! [`cirlearn_telemetry::write_atomic`]): readers observe the previous
//! checkpoint or the complete new one, nothing in between.

use std::path::Path;
use std::time::Duration;

use cirlearn_logic::{Cube, Literal};
use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::write_atomic;

use crate::fbdt::FbdtSnapshot;
use crate::learner::{LearnerConfig, Strategy};

/// First token of a checkpoint file's header line.
pub const CHECKPOINT_MAGIC: &str = "cirlearn-checkpoint";

/// Current checkpoint format version (header token `v1`).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint file could not be loaded or applied.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic — it is not a
    /// checkpoint at all.
    Magic(String),
    /// The file declares a format version this build does not speak.
    Version(String),
    /// The payload bytes do not match the header checksum: the file is
    /// torn, truncated or corrupted.
    Checksum {
        /// Checksum declared in the header.
        expected: u64,
        /// Checksum of the payload actually present.
        found: u64,
    },
    /// The payload is not valid JSON, or a field is missing/mistyped.
    Parse(String),
    /// The state is internally valid but does not match the resuming
    /// run: different config, different oracle shape, or an oracle
    /// stack that rejected its nested state.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Magic(line) => {
                write!(f, "not a cirlearn checkpoint (header {line:?})")
            }
            CheckpointError::Version(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v:?} (this build speaks v{CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::Checksum { expected, found } => write!(
                f,
                "checkpoint payload corrupted: checksum {found:016x}, header says {expected:016x}"
            ),
            CheckpointError::Parse(why) => write!(f, "malformed checkpoint payload: {why}"),
            CheckpointError::Mismatch(why) => {
                write!(f, "checkpoint does not match this run: {why}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64: the payload checksum. Not cryptographic — it guards
/// against torn writes and bit rot, not adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fingerprint of the learner configuration, stored in checkpoints
/// so a resume with different settings is rejected instead of silently
/// producing a run that matches neither configuration.
pub fn config_fingerprint(config: &LearnerConfig) -> u64 {
    // `Debug` output covers every field deterministically; hashing the
    // rendered form avoids hand-maintaining a field list that would
    // silently go stale when the config grows.
    fnv1a64(format!("{config:?}").as_bytes())
}

/// Where a suspended run picks back up.
#[derive(Debug, Clone, PartialEq)]
pub enum Cursor {
    /// All per-output work up to here is recorded in the progress
    /// arrays; resume with the next output that has no learned edge.
    NextOutput,
    /// Mid-FBDT on one output: the frontier and collected cubes are in
    /// the snapshot; support identification for this output already
    /// ran (its queries and RNG draws are burned into the totals).
    Fbdt {
        /// The suspended tree: frontier, onset/offset cubes, stats.
        snapshot: FbdtSnapshot,
        /// The per-tree query cap assigned when this tree started (the
        /// budget share must not be re-portioned mid-tree).
        max_queries: Option<u64>,
        /// Wall clock already spent on this output in prior segments.
        partial_elapsed: Duration,
        /// Oracle queries already spent on this output in prior
        /// segments.
        partial_queries: u64,
    },
}

/// The complete serializable state of a learning run at a stage
/// boundary.
///
/// Produced by [`Learner::learn_with`](crate::Learner::learn_with)
/// when a stop is requested, persisted with [`LearnState::save`], and
/// consumed by [`Learner::resume`](crate::Learner::resume).
///
/// Numeric range: fields that must survive at full 64-bit width (the
/// RNG state words, the config fingerprint) are stored as 16-hex-digit
/// strings; counters and durations ride as plain JSON numbers, which
/// are exact up to 2⁵³ — about 9 quadrillion queries or 285 years of
/// microseconds, far past anything a run can accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnState {
    /// RNG seed of the run (for reporting; the live generator state is
    /// in [`LearnState::rng`]).
    pub seed: u64,
    /// Fingerprint of the [`LearnerConfig`] that produced this state.
    pub config_fingerprint: u64,
    /// The xoshiro256++ state words at the suspension point.
    pub rng: [u64; 4],
    /// Oracle input port names, for shape validation on resume.
    pub input_names: Vec<String>,
    /// Oracle output port names, for shape validation on resume.
    pub output_names: Vec<String>,
    /// Oracle queries spent across all completed segments.
    pub queries_used: u64,
    /// Wall clock consumed across all completed segments (subtracted
    /// from the time budget on resume).
    pub elapsed_before: Duration,
    /// The partial circuit (no outputs attached yet) as canonical
    /// ASCII AIGER; import rebuilds identical node ids.
    pub circuit_aiger: String,
    /// Learned output edges as AIGER literal codes, `None` where the
    /// output is still unfinished.
    pub edges: Vec<Option<u32>>,
    /// Winning strategy per output, where decided.
    pub strategies: Vec<Option<Strategy>>,
    /// Estimated support size per output.
    pub support_sizes: Vec<usize>,
    /// Budget-forced FBDT leaves per output.
    pub forced: Vec<usize>,
    /// Wall clock spent learning each output.
    pub out_elapsed: Vec<Duration>,
    /// Oracle queries spent learning each output.
    pub out_queries: Vec<u64>,
    /// Observed truth bias per output (drives majority-vote
    /// degradation).
    pub truth_bias: Vec<Option<f64>>,
    /// Where to pick back up.
    pub cursor: Cursor,
    /// The oracle stack's own resume state, if it has any (fault
    /// schedules, retry-jitter positions).
    pub oracle: Option<Json>,
}

impl LearnState {
    /// Serializes to the full checkpoint file contents (header line +
    /// checksummed JSON payload).
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let payload = self.to_json().to_compact();
        let header = format!(
            "{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION} fnv64:{:016x}\n",
            fnv1a64(payload.as_bytes())
        );
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(payload.as_bytes());
        bytes
    }

    /// Parses checkpoint file contents, verifying magic, version and
    /// checksum before touching the payload.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] for every malformation —
    /// wrong magic, unknown version, checksum mismatch (torn or
    /// bit-flipped file), or a payload that fails to parse.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<LearnState, CheckpointError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| CheckpointError::Parse(format!("not UTF-8: {e}")))?;
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| CheckpointError::Magic(first_line(text)))?;
        let mut tokens = header.split_whitespace();
        if tokens.next() != Some(CHECKPOINT_MAGIC) {
            return Err(CheckpointError::Magic(header.to_owned()));
        }
        let version = tokens.next().unwrap_or_default();
        if version != format!("v{CHECKPOINT_VERSION}") {
            return Err(CheckpointError::Version(version.to_owned()));
        }
        let checksum = tokens
            .next()
            .and_then(|t| t.strip_prefix("fnv64:"))
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| CheckpointError::Magic(header.to_owned()))?;
        let found = fnv1a64(payload.as_bytes());
        if found != checksum {
            return Err(CheckpointError::Checksum {
                expected: checksum,
                found,
            });
        }
        let json = Json::parse(payload).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        LearnState::from_json(&json)
    }

    /// Atomically writes the checkpoint to `path` (tmp + fsync +
    /// rename). Returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the destination is left
    /// untouched on failure.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let bytes = self.to_file_bytes();
        write_atomic(path, &bytes)?;
        Ok(bytes.len())
    }

    /// Loads and verifies a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`CheckpointError::Io`]; every form of
    /// corruption as the matching typed variant.
    pub fn load(path: impl AsRef<Path>) -> Result<LearnState, CheckpointError> {
        // blocking-ok: checkpoint load runs once at resume, before the
        // learning loop starts; the hot-graph edge here is a widened
        // `.load()` (atomic) call, not a real hot-path caller.
        let bytes = std::fs::read(path)?;
        LearnState::from_file_bytes(&bytes)
    }

    /// Number of outputs with a learned edge — the resume progress
    /// indicator.
    pub fn outputs_done(&self) -> usize {
        self.edges.iter().filter(|e| e.is_some()).count()
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("seed", hex_u64(self.seed)),
            ("config_fingerprint", hex_u64(self.config_fingerprint)),
            (
                "rng",
                Json::Array(self.rng.iter().map(|&w| hex_u64(w)).collect()),
            ),
            ("input_names", string_array(&self.input_names)),
            ("output_names", string_array(&self.output_names)),
            ("queries_used", Json::from(self.queries_used)),
            ("elapsed_before_us", duration_json(self.elapsed_before)),
            ("circuit_aiger", Json::from(self.circuit_aiger.clone())),
            (
                "edges",
                Json::Array(
                    self.edges
                        .iter()
                        .map(|e| match e {
                            Some(code) => Json::from(u64::from(*code)),
                            None => Json::Null,
                        })
                        .collect(),
                ),
            ),
            (
                "strategies",
                Json::Array(
                    self.strategies
                        .iter()
                        .map(|s| match s {
                            Some(s) => Json::from(s.to_string()),
                            None => Json::Null,
                        })
                        .collect(),
                ),
            ),
            (
                "support_sizes",
                Json::Array(self.support_sizes.iter().map(|&v| Json::from(v)).collect()),
            ),
            (
                "forced",
                Json::Array(self.forced.iter().map(|&v| Json::from(v)).collect()),
            ),
            (
                "out_elapsed_us",
                Json::Array(self.out_elapsed.iter().map(|&d| duration_json(d)).collect()),
            ),
            (
                "out_queries",
                Json::Array(self.out_queries.iter().map(|&v| Json::from(v)).collect()),
            ),
            (
                "truth_bias",
                Json::Array(
                    self.truth_bias
                        .iter()
                        .map(|b| match b {
                            Some(r) => Json::from(*r),
                            None => Json::Null,
                        })
                        .collect(),
                ),
            ),
            ("cursor", cursor_to_json(&self.cursor)),
            ("oracle", self.oracle.clone().unwrap_or(Json::Null)),
        ])
    }

    fn from_json(json: &Json) -> Result<LearnState, CheckpointError> {
        let field = |name: &str| {
            json.get(name)
                .ok_or_else(|| CheckpointError::Parse(format!("missing field `{name}`")))
        };
        let num_outputs_arrays = [
            "edges",
            "strategies",
            "support_sizes",
            "forced",
            "out_elapsed_us",
            "out_queries",
            "truth_bias",
        ];
        let state = LearnState {
            seed: parse_hex_u64(field("seed")?, "seed")?,
            config_fingerprint: parse_hex_u64(field("config_fingerprint")?, "config_fingerprint")?,
            rng: parse_rng(field("rng")?)?,
            input_names: parse_strings(field("input_names")?, "input_names")?,
            output_names: parse_strings(field("output_names")?, "output_names")?,
            queries_used: parse_u64(field("queries_used")?, "queries_used")?,
            elapsed_before: parse_duration(field("elapsed_before_us")?, "elapsed_before_us")?,
            circuit_aiger: field("circuit_aiger")?
                .as_str()
                .ok_or_else(|| CheckpointError::Parse("`circuit_aiger` is not a string".into()))?
                .to_owned(),
            edges: parse_array(field("edges")?, "edges", |v| match v {
                Json::Null => Ok(None),
                _ => parse_u64(v, "edges[]").and_then(|c| {
                    u32::try_from(c)
                        .map(Some)
                        .map_err(|_| CheckpointError::Parse("edge code exceeds u32".into()))
                }),
            })?,
            strategies: parse_array(field("strategies")?, "strategies", |v| match v {
                Json::Null => Ok(None),
                _ => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| CheckpointError::Parse("strategy is not a string".into()))?;
                    Strategy::parse(s)
                        .map(Some)
                        .ok_or_else(|| CheckpointError::Parse(format!("unknown strategy {s:?}")))
                }
            })?,
            support_sizes: parse_array(field("support_sizes")?, "support_sizes", |v| {
                parse_u64(v, "support_sizes[]").map(|v| v as usize)
            })?,
            forced: parse_array(field("forced")?, "forced", |v| {
                parse_u64(v, "forced[]").map(|v| v as usize)
            })?,
            out_elapsed: parse_array(field("out_elapsed_us")?, "out_elapsed_us", |v| {
                parse_duration(v, "out_elapsed_us[]")
            })?,
            out_queries: parse_array(field("out_queries")?, "out_queries", |v| {
                parse_u64(v, "out_queries[]")
            })?,
            truth_bias: parse_array(field("truth_bias")?, "truth_bias", |v| match v {
                Json::Null => Ok(None),
                _ => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| CheckpointError::Parse("truth bias is not a number".into())),
            })?,
            cursor: cursor_from_json(field("cursor")?)?,
            oracle: match field("oracle")? {
                Json::Null => None,
                other => Some(other.clone()),
            },
        };
        let n = state.output_names.len();
        for name in num_outputs_arrays {
            let len = json
                .get(name)
                .and_then(Json::as_array)
                .map_or(0, <[Json]>::len);
            if len != n {
                return Err(CheckpointError::Parse(format!(
                    "`{name}` has {len} entries for {n} outputs"
                )));
            }
        }
        Ok(state)
    }
}

fn first_line(text: &str) -> String {
    text.lines().next().unwrap_or_default().to_owned()
}

/// Full-range u64s serialize as 16-digit hex strings: JSON numbers ride
/// on `f64` and lose precision past 2^53.
fn hex_u64(v: u64) -> Json {
    Json::from(format!("{v:016x}"))
}

fn parse_hex_u64(json: &Json, what: &str) -> Result<u64, CheckpointError> {
    json.as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| CheckpointError::Parse(format!("`{what}` is not a hex u64")))
}

fn parse_u64(json: &Json, what: &str) -> Result<u64, CheckpointError> {
    json.as_u64()
        .ok_or_else(|| CheckpointError::Parse(format!("`{what}` is not a non-negative integer")))
}

fn duration_json(d: Duration) -> Json {
    Json::from(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

fn parse_duration(json: &Json, what: &str) -> Result<Duration, CheckpointError> {
    parse_u64(json, what).map(Duration::from_micros)
}

fn string_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(|s| Json::from(s.clone())).collect())
}

fn parse_strings(json: &Json, what: &str) -> Result<Vec<String>, CheckpointError> {
    parse_array(json, what, |v| {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| CheckpointError::Parse(format!("`{what}` contains a non-string entry")))
    })
}

fn parse_array<T>(
    json: &Json,
    what: &str,
    mut each: impl FnMut(&Json) -> Result<T, CheckpointError>,
) -> Result<Vec<T>, CheckpointError> {
    json.as_array()
        .ok_or_else(|| CheckpointError::Parse(format!("`{what}` is not an array")))?
        .iter()
        .map(&mut each)
        .collect()
}

fn parse_rng(json: &Json) -> Result<[u64; 4], CheckpointError> {
    let words = parse_array(json, "rng", |v| parse_hex_u64(v, "rng[]"))?;
    <[u64; 4]>::try_from(words)
        .map_err(|w| CheckpointError::Parse(format!("`rng` has {} words, need 4", w.len())))
}

fn cube_to_json(cube: &Cube) -> Json {
    Json::Array(
        cube.literals()
            .iter()
            .map(|l| Json::from(u64::from(l.code())))
            .collect(),
    )
}

fn cube_from_json(json: &Json) -> Result<Cube, CheckpointError> {
    let codes = parse_array(json, "cube", |v| {
        parse_u64(v, "literal code").and_then(|c| {
            u32::try_from(c).map_err(|_| CheckpointError::Parse("literal code exceeds u32".into()))
        })
    })?;
    Cube::from_literals(codes.into_iter().map(Literal::from_code))
        .ok_or_else(|| CheckpointError::Parse("cube contains contradictory literals".into()))
}

fn cubes_to_json(cubes: &[Cube]) -> Json {
    Json::Array(cubes.iter().map(cube_to_json).collect())
}

fn cubes_from_json(json: &Json, what: &str) -> Result<Vec<Cube>, CheckpointError> {
    parse_array(json, what, cube_from_json)
}

fn cursor_to_json(cursor: &Cursor) -> Json {
    match cursor {
        Cursor::NextOutput => Json::object([("kind", Json::from("next_output"))]),
        Cursor::Fbdt {
            snapshot,
            max_queries,
            partial_elapsed,
            partial_queries,
        } => Json::object([
            ("kind", Json::from("fbdt")),
            ("output", Json::from(snapshot.output)),
            (
                "support",
                Json::Array(snapshot.support.iter().map(|&v| Json::from(v)).collect()),
            ),
            ("truth_ratio_hint", Json::from(snapshot.truth_ratio_hint)),
            ("collect_offset", Json::Bool(snapshot.collect_offset)),
            ("onset", cubes_to_json(&snapshot.onset)),
            ("offset", cubes_to_json(&snapshot.offset)),
            ("frontier", cubes_to_json(&snapshot.frontier)),
            ("splits", Json::from(snapshot.splits)),
            ("leaves", Json::from(snapshot.leaves)),
            ("forced_leaves", Json::from(snapshot.forced_leaves)),
            ("tree_queries", Json::from(snapshot.queries)),
            (
                "max_queries",
                match max_queries {
                    Some(cap) => Json::from(*cap),
                    None => Json::Null,
                },
            ),
            ("partial_elapsed_us", duration_json(*partial_elapsed)),
            ("partial_queries", Json::from(*partial_queries)),
        ]),
    }
}

fn cursor_from_json(json: &Json) -> Result<Cursor, CheckpointError> {
    let kind = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Parse("cursor has no `kind`".into()))?;
    match kind {
        "next_output" => Ok(Cursor::NextOutput),
        "fbdt" => {
            let field = |name: &str| {
                json.get(name)
                    .ok_or_else(|| CheckpointError::Parse(format!("fbdt cursor missing `{name}`")))
            };
            let snapshot = FbdtSnapshot {
                output: parse_u64(field("output")?, "output")? as usize,
                support: parse_array(field("support")?, "support", |v| {
                    parse_u64(v, "support[]").map(|v| v as usize)
                })?,
                truth_ratio_hint: field("truth_ratio_hint")?.as_f64().ok_or_else(|| {
                    CheckpointError::Parse("`truth_ratio_hint` not a number".into())
                })?,
                collect_offset: match field("collect_offset")? {
                    Json::Bool(b) => *b,
                    _ => return Err(CheckpointError::Parse("`collect_offset` not a bool".into())),
                },
                onset: cubes_from_json(field("onset")?, "onset")?,
                offset: cubes_from_json(field("offset")?, "offset")?,
                frontier: cubes_from_json(field("frontier")?, "frontier")?,
                splits: parse_u64(field("splits")?, "splits")? as usize,
                leaves: parse_u64(field("leaves")?, "leaves")? as usize,
                forced_leaves: parse_u64(field("forced_leaves")?, "forced_leaves")? as usize,
                queries: parse_u64(field("tree_queries")?, "tree_queries")?,
            };
            Ok(Cursor::Fbdt {
                snapshot,
                max_queries: match field("max_queries")? {
                    Json::Null => None,
                    v => Some(parse_u64(v, "max_queries")?),
                },
                partial_elapsed: parse_duration(
                    field("partial_elapsed_us")?,
                    "partial_elapsed_us",
                )?,
                partial_queries: parse_u64(field("partial_queries")?, "partial_queries")?,
            })
        }
        other => Err(CheckpointError::Parse(format!(
            "unknown cursor kind {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::Var;

    pub(crate) fn sample_state() -> LearnState {
        let mut circuit = cirlearn_aig::Aig::new();
        let a = circuit.add_input("a");
        let b = circuit.add_input("b");
        let y = circuit.xor(a, b);
        let cube =
            Cube::from_literals([Var::new(0).positive(), Var::new(3).negative()]).expect("ok");
        LearnState {
            seed: 0x1CCAD,
            config_fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            rng: [1, u64::MAX, 0x8000_0000_0000_0000, 42],
            input_names: vec!["a".into(), "b".into()],
            output_names: vec!["y".into(), "z".into()],
            queries_used: 123_456,
            elapsed_before: Duration::from_micros(9_876_543),
            circuit_aiger: circuit.to_aiger_ascii(),
            edges: vec![Some(y.code()), None],
            strategies: vec![Some(Strategy::Fbdt), None],
            support_sizes: vec![2, 0],
            forced: vec![1, 0],
            out_elapsed: vec![Duration::from_micros(5000), Duration::ZERO],
            out_queries: vec![777, 0],
            truth_bias: vec![Some(0.625), None],
            cursor: Cursor::Fbdt {
                snapshot: FbdtSnapshot {
                    output: 1,
                    support: vec![0, 1, 3],
                    truth_ratio_hint: 0.375,
                    collect_offset: false,
                    onset: vec![cube.clone()],
                    offset: vec![],
                    frontier: vec![cube, Cube::top()],
                    splits: 3,
                    leaves: 2,
                    forced_leaves: 0,
                    queries: 4321,
                },
                max_queries: Some(10_000),
                partial_elapsed: Duration::from_micros(2500),
                partial_queries: 4399,
            },
            oracle: Some(Json::object([
                ("kind", Json::from("faulty")),
                ("served", Json::from(99u64)),
            ])),
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let state = sample_state();
        let bytes = state.to_file_bytes();
        let back = LearnState::from_file_bytes(&bytes).expect("own bytes parse");
        assert_eq!(back, state);
    }

    #[test]
    fn next_output_cursor_roundtrips() {
        let state = LearnState {
            cursor: Cursor::NextOutput,
            oracle: None,
            ..sample_state()
        };
        let back = LearnState::from_file_bytes(&state.to_file_bytes()).expect("parses");
        assert_eq!(back, state);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_state().to_file_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 40] {
            let err = LearnState::from_file_bytes(&bytes[..cut]).expect_err("truncated");
            assert!(
                matches!(
                    err,
                    CheckpointError::Checksum { .. } | CheckpointError::Magic(_)
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let bytes = sample_state().to_file_bytes();
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        // Flip one bit somewhere in the payload.
        let mut corrupted = bytes.clone();
        corrupted[header_len + 100] ^= 0x04;
        let err = LearnState::from_file_bytes(&corrupted).expect_err("corrupted");
        assert!(matches!(err, CheckpointError::Checksum { .. }), "{err}");
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let bytes = sample_state().to_file_bytes();
        let text = String::from_utf8(bytes).unwrap();
        let (header, payload) = text.split_once('\n').unwrap();

        let not_ckpt = format!("some-other-file v1 fnv64:0\n{payload}");
        assert!(matches!(
            LearnState::from_file_bytes(not_ckpt.as_bytes()),
            Err(CheckpointError::Magic(_))
        ));

        let future = header.replace(" v1 ", " v99 ");
        let future = format!("{future}\n{payload}");
        assert!(matches!(
            LearnState::from_file_bytes(future.as_bytes()),
            Err(CheckpointError::Version(_))
        ));

        assert!(matches!(
            LearnState::from_file_bytes(b"garbage"),
            Err(CheckpointError::Magic(_))
        ));
        assert!(matches!(
            LearnState::from_file_bytes(&[0xFF, 0xFE, 0x80]),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn save_and_load_via_disk() {
        let dir = std::env::temp_dir().join(format!("cirlearn-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("state.ckpt");
        let state = sample_state();
        let bytes = state.save(&path).expect("save");
        assert_eq!(bytes, state.to_file_bytes().len());
        let back = LearnState::load(&path).expect("load");
        assert_eq!(back, state);
        assert_eq!(back.outputs_done(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = LearnState::load("/nonexistent/learn.ckpt").expect_err("missing");
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = config_fingerprint(&LearnerConfig::default());
        let b = config_fingerprint(&LearnerConfig::fast());
        assert_ne!(a, b);
        assert_eq!(a, config_fingerprint(&LearnerConfig::default()));
    }
}
