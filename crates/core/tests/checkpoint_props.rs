//! Property coverage for the checkpoint file format.
//!
//! Two families:
//!
//! - **Roundtrip**: any serializable `LearnState` — including RNG
//!   state words at the integer extremes, FBDT frontier order, and
//!   oracle sub-state — must survive `to_file_bytes` →
//!   `from_file_bytes` exactly (`PartialEq` covers every field).
//! - **Corruption**: truncated files, single-bit flips, version skew
//!   and arbitrary garbage must surface as a typed
//!   [`CheckpointError`], never as a panic and *never* as a silently
//!   different state (misresume).

use std::time::Duration;

use cirlearn::fbdt::FbdtSnapshot;
use cirlearn::{CheckpointError, Cursor, LearnState, Strategy};
use cirlearn_logic::{Cube, Var};
use cirlearn_telemetry::json::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters and durations are JSON numbers in the checkpoint payload:
/// exact up to 2^53, unreachable in any real run (the format doc spells
/// out the bound). The generators stay inside it; full-width 64-bit
/// survival is exercised separately through the hex-encoded RNG words.
const EXACT: u64 = 1 << 53;

/// A random cube over at most `max_vars` variables (distinct by
/// construction, so `from_literals` always accepts).
fn random_cube(rng: &mut StdRng, max_vars: usize) -> Cube {
    let mut lits = Vec::new();
    for v in 0..max_vars {
        if !rng.gen_bool(0.4) {
            continue;
        }
        let var = Var::new(v as u32);
        lits.push(if rng.gen_bool(0.5) {
            var.positive()
        } else {
            var.negative()
        });
    }
    Cube::from_literals(lits).expect("distinct vars form a cube")
}

/// A random, internally consistent `LearnState` driven by `seed`.
fn random_state(seed: u64) -> LearnState {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_inputs = rng.gen_range(1..=24usize);
    let num_outputs = rng.gen_range(1..=6usize);

    let mut circuit = cirlearn_aig::Aig::new();
    let edges = circuit.add_inputs("i", num_inputs);
    let mut pool = edges.clone();
    for _ in 0..rng.gen_range(0..20usize) {
        let a = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
        let b = pool[rng.gen_range(0..pool.len())].complement_if(rng.gen_bool(0.5));
        pool.push(circuit.and(a, b));
    }

    let strategies = [
        Strategy::LinearTemplate,
        Strategy::ComparatorTemplate,
        Strategy::Exhaustive,
        Strategy::Fbdt,
        Strategy::CompressedFbdt,
        Strategy::Degraded,
    ];
    let out_edges: Vec<Option<u32>> = (0..num_outputs)
        .map(|_| {
            rng.gen_bool(0.6)
                .then(|| pool[rng.gen_range(0..pool.len())].code())
        })
        .collect();
    let cursor = if rng.gen_bool(0.5) {
        Cursor::NextOutput
    } else {
        let n_cubes = |rng: &mut StdRng| rng.gen_range(0..5usize);
        let onset: Vec<Cube> = (0..n_cubes(&mut rng))
            .map(|_| random_cube(&mut rng, num_inputs))
            .collect();
        let offset: Vec<Cube> = (0..n_cubes(&mut rng))
            .map(|_| random_cube(&mut rng, num_inputs))
            .collect();
        let frontier: Vec<Cube> = (0..n_cubes(&mut rng))
            .map(|_| random_cube(&mut rng, num_inputs))
            .collect();
        Cursor::Fbdt {
            snapshot: FbdtSnapshot {
                output: rng.gen_range(0..num_outputs),
                support: (0..num_inputs).filter(|_| rng.gen_bool(0.5)).collect(),
                truth_ratio_hint: rng.gen::<f64>(),
                collect_offset: rng.gen_bool(0.5),
                onset,
                offset,
                frontier,
                splits: rng.gen_range(0..1000),
                leaves: rng.gen_range(0..1000),
                forced_leaves: rng.gen_range(0..50),
                queries: rng.gen_range(0..EXACT),
            },
            max_queries: rng.gen_bool(0.5).then(|| rng.gen_range(0..EXACT)),
            partial_elapsed: Duration::from_micros(rng.gen_range(0..EXACT)),
            partial_queries: rng.gen_range(0..EXACT),
        }
    };
    LearnState {
        seed: rng.gen(),
        config_fingerprint: rng.gen(),
        // Hit the extremes the hex encoding must survive.
        rng: [0, u64::MAX, rng.gen(), 1u64 << 63],
        input_names: (0..num_inputs).map(|k| format!("i{k}")).collect(),
        output_names: (0..num_outputs).map(|k| format!("o{k}")).collect(),
        queries_used: rng.gen_range(0..EXACT),
        elapsed_before: Duration::from_micros(rng.gen_range(0..EXACT)),
        circuit_aiger: circuit.to_aiger_ascii(),
        edges: out_edges,
        strategies: (0..num_outputs)
            .map(|_| {
                rng.gen_bool(0.7)
                    .then(|| strategies[rng.gen_range(0..strategies.len())])
            })
            .collect(),
        support_sizes: (0..num_outputs).map(|_| rng.gen_range(0..64)).collect(),
        forced: (0..num_outputs).map(|_| rng.gen_range(0..64)).collect(),
        out_elapsed: (0..num_outputs)
            .map(|_| Duration::from_micros(rng.gen_range(0..1u64 << 40)))
            .collect(),
        out_queries: (0..num_outputs).map(|_| rng.gen_range(0..EXACT)).collect(),
        truth_bias: (0..num_outputs)
            .map(|_| rng.gen_bool(0.5).then(|| rng.gen::<f64>()))
            .collect(),
        cursor,
        oracle: rng.gen_bool(0.5).then(|| {
            Json::object([
                ("fault_seq", Json::from(rng.gen_range(0u64..1 << 50))),
                ("kind", Json::from("faulty")),
            ])
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_preserves_every_field(seed in any::<u64>()) {
        let state = random_state(seed);
        let bytes = state.to_file_bytes();
        let back = LearnState::from_file_bytes(&bytes).expect("own bytes parse");
        prop_assert_eq!(back, state);
    }

    #[test]
    fn truncation_yields_a_typed_error(seed in any::<u64>(), at in any::<u64>()) {
        let bytes = random_state(seed).to_file_bytes();
        let cut = (at % bytes.len() as u64) as usize;
        // Never a panic, never an Ok with a different state.
        prop_assert!(LearnState::from_file_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_bit_flips_are_rejected(seed in any::<u64>(), pos in any::<u64>(), bit in 0..8u32) {
        let state = random_state(seed);
        let mut bytes = state.to_file_bytes();
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] ^= 1 << bit;
        // A flip either breaks the header, the checksum, the UTF-8
        // encoding or the JSON — all typed errors. (The flipped byte
        // can't equal the original; xor with a nonzero mask differs.)
        match LearnState::from_file_bytes(&bytes) {
            Err(_) => {}
            Ok(back) => prop_assert!(
                false,
                "bit flip at {idx} silently accepted: {:?} vs {:?}",
                back.queries_used,
                state.queries_used
            ),
        }
    }

    #[test]
    fn version_skew_is_a_version_error(seed in any::<u64>(), version in 2..1000u32) {
        let bytes = random_state(seed).to_file_bytes();
        let text = String::from_utf8(bytes).expect("checkpoint files are UTF-8");
        let skewed = text.replacen("v1", &format!("v{version}"), 1);
        let err = LearnState::from_file_bytes(skewed.as_bytes()).expect_err("wrong version");
        prop_assert!(
            matches!(err, CheckpointError::Version(_)),
            "want Version error, got {err}"
        );
    }

    #[test]
    fn arbitrary_garbage_never_panics(raw in prop::collection::vec(0..256u32, 512)) {
        // Random bytes virtually never carry a valid magic + checksum;
        // the point is that the parser returns instead of panicking.
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = LearnState::from_file_bytes(&bytes);
    }
}
