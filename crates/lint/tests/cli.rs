//! End-to-end checks on the `cirlearn-lint` binary: nonzero exit on a
//! seeded violation of each rule, zero exit on the real workspace.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cirlearn-lint-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp tree");
        TempTree(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).expect("create parents");
        fs::write(path, contents).expect("write seeded file");
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_lint(root: &Path) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cirlearn-lint"))
        .arg(root)
        .output()
        .expect("run cirlearn-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn seeded_violations_of_every_rule_exit_nonzero() {
    let tree = TempTree::new("seeded");
    tree.write(
        "crates/x/src/bad_unsafe.rs",
        "fn f() {\n    let x = unsafe { danger() };\n}\n",
    );
    tree.write("crates/x/src/bad_static.rs", "static mut X: u64 = 0;\n");
    tree.write(
        "crates/x/src/bad_relaxed.rs",
        "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n",
    );
    tree.write(
        "crates/exec/src/bad_alias.rs",
        "use std::sync::atomic::AtomicU64;\n",
    );
    let (code, stdout) = run_lint(&tree.0);
    assert_eq!(code, Some(1), "seeded tree must fail the lint:\n{stdout}");
    for rule in [
        "unsafe-safety-comment",
        "static-mut",
        "relaxed-store",
        "atomic-alias",
    ] {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "missing [{rule}] in output:\n{stdout}"
        );
    }
}

#[test]
fn a_clean_tree_exits_zero() {
    let tree = TempTree::new("clean");
    tree.write(
        "crates/x/src/good.rs",
        "fn f() {\n    // SAFETY: nothing can go wrong.\n    let x = unsafe { danger() };\n}\n",
    );
    let (code, stdout) = run_lint(&tree.0);
    assert_eq!(code, Some(0), "clean tree must pass:\n{stdout}");
}

#[test]
fn the_real_workspace_exits_zero() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (code, stdout) = run_lint(root);
    assert_eq!(code, Some(0), "workspace must be lint-clean:\n{stdout}");
}
