//! End-to-end checks on the `cirlearn-lint` binary: nonzero exit on a
//! seeded violation of each rule, zero exit on the real workspace —
//! in both the per-line mode and the `--graph` call-graph mode.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cirlearn-lint-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp tree");
        TempTree(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).expect("create parents");
        fs::write(path, contents).expect("write seeded file");
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_lint(root: &Path) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cirlearn-lint"))
        .arg(root)
        .output()
        .expect("run cirlearn-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn seeded_violations_of_every_rule_exit_nonzero() {
    let tree = TempTree::new("seeded");
    tree.write(
        "crates/x/src/bad_unsafe.rs",
        "fn f() {\n    let x = unsafe { danger() };\n}\n",
    );
    tree.write("crates/x/src/bad_static.rs", "static mut X: u64 = 0;\n");
    tree.write(
        "crates/x/src/bad_relaxed.rs",
        "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n",
    );
    tree.write(
        "crates/exec/src/bad_alias.rs",
        "use std::sync::atomic::AtomicU64;\n",
    );
    let (code, stdout) = run_lint(&tree.0);
    assert_eq!(code, Some(1), "seeded tree must fail the lint:\n{stdout}");
    for rule in [
        "unsafe-safety-comment",
        "static-mut",
        "relaxed-store",
        "atomic-alias",
    ] {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "missing [{rule}] in output:\n{stdout}"
        );
    }
}

#[test]
fn a_clean_tree_exits_zero() {
    let tree = TempTree::new("clean");
    tree.write(
        "crates/x/src/good.rs",
        "fn f() {\n    // SAFETY: nothing can go wrong.\n    let x = unsafe { danger() };\n}\n",
    );
    let (code, stdout) = run_lint(&tree.0);
    assert_eq!(code, Some(0), "clean tree must pass:\n{stdout}");
}

#[test]
fn the_real_workspace_exits_zero() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (code, stdout) = run_lint(root);
    assert_eq!(code, Some(0), "workspace must be lint-clean:\n{stdout}");
}

// ---------------------------------------------------------------------------
// Graph mode.

fn run_graph(root: &Path, extra: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cirlearn-lint"))
        .arg("--graph")
        .arg(root)
        .args(extra)
        .output()
        .expect("run cirlearn-lint --graph");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A seeded crate where `hot_entry` reaches each rule's sin while a
/// cold twin commits the same sins unreached — proving both the rules
/// and the reachability scoping.
fn seeded_hot_tree(tag: &str) -> TempTree {
    let tree = TempTree::new(tag);
    tree.write(
        "crates/x/src/lib.rs",
        "pub fn hot_entry() {\n    middle();\n}\n\
         fn middle() {\n    panicky();\n    allocy();\n    blocky();\n}\n\
         fn panicky() {\n    let xs = [1];\n    let _ = xs[2];\n}\n\
         fn allocy() {\n    let mut v = Vec::new();\n    v.push(1);\n}\n\
         fn blocky(m: &std::sync::Mutex<u32>) {\n    let _g = m.lock();\n}\n\
         fn cold_twin() {\n    let xs = [1];\n    let _ = xs[2].unwrap();\n    let _ = std::fs::read(\"x\");\n}\n",
    );
    tree
}

#[test]
fn graph_mode_flags_each_rule_family_only_in_hot_code() {
    let tree = seeded_hot_tree("graph-seeded");
    let (code, stdout, stderr) = run_graph(&tree.0, &["--roots", "hot_entry@custom:5"]);
    // Advisory mode: findings print but the exit stays 0.
    assert_eq!(
        code,
        Some(0),
        "plain --graph is advisory:\n{stdout}{stderr}"
    );
    for rule in ["hot-panic", "hot-alloc", "hot-blocking"] {
        assert!(
            stdout.contains(&format!("[{rule}/")),
            "missing [{rule}] finding:\n{stdout}"
        );
    }
    // Reachability scoping: the cold twin commits the same sins but is
    // unreachable from the root, so it must not be flagged.
    assert!(
        !stdout.contains("cold_twin"),
        "cold code was flagged:\n{stdout}"
    );

    // --deny gates on the panic/blocking findings.
    let (code, _, _) = run_graph(&tree.0, &["--roots", "hot_entry@custom:5", "--deny"]);
    assert_eq!(code, Some(1), "--deny must fail on hot-panic/hot-blocking");
}

#[test]
fn graph_deny_passes_once_sites_are_justified() {
    let tree = TempTree::new("graph-justified");
    tree.write(
        "crates/x/src/lib.rs",
        "pub fn hot_entry(m: &std::sync::Mutex<u32>) {\n\
         \x20   // panic-ok: one-element array, constant index.\n\
         \x20   let _ = [1][0];\n\
         \x20   // blocking-ok: uncontended in this test.\n\
         \x20   let _g = m.lock();\n\
         \x20   // alloc-ok: setup, not steady state.\n\
         \x20   let _v: Vec<u32> = Vec::new();\n}\n",
    );
    let (code, stdout, stderr) = run_graph(&tree.0, &["--roots", "hot_entry@custom:5", "--deny"]);
    assert_eq!(
        code,
        Some(0),
        "justified sites must pass --deny:\n{stdout}{stderr}"
    );
    // The hottest table still reports the justified residue.
    assert!(
        stderr.contains("hot_entry"),
        "justified sites should keep the function in the hottest table:\n{stderr}"
    );
}

#[test]
fn graph_warnings_do_not_gate_deny() {
    let tree = TempTree::new("graph-warn");
    tree.write(
        "crates/x/src/lib.rs",
        "pub fn hot_entry() {\n    let mut v = Vec::new();\n    v.push(1);\n}\n",
    );
    let (code, stdout, _) = run_graph(&tree.0, &["--roots", "hot_entry@custom:5", "--deny"]);
    assert_eq!(
        code,
        Some(0),
        "hot-alloc warnings must never gate --deny:\n{stdout}"
    );
    assert!(stdout.contains("[hot-alloc/warn]"), "warning still prints");
}

#[test]
fn graph_out_emits_json() {
    let tree = seeded_hot_tree("graph-json");
    let out_path = tree.0.join("graph.json");
    let (code, _, _) = run_graph(
        &tree.0,
        &[
            "--roots",
            "hot_entry@custom:5",
            "--graph-out",
            out_path.to_str().unwrap(),
        ],
    );
    assert_eq!(code, Some(0));
    let json = fs::read_to_string(&out_path).expect("graph JSON written");
    assert!(json.starts_with("{\"schema_version\":1,"));
    assert!(json.contains("\"fn\":\"hot_entry\""));
    assert!(json.contains("\"hot\":true"));
    assert!(json.contains("\"rule\":\"hot-panic\""));
}

#[test]
fn the_real_workspace_certifies_under_graph_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (code, stdout, stderr) = run_graph(root, &["--deny"]);
    assert_eq!(
        code,
        Some(0),
        "hot-path certification must pass on the workspace:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("0 deny"),
        "summary should report zero deny findings:\n{stderr}"
    );
}
