//! The real workspace must be lint-clean.
//!
//! This is the test that keeps the allow-lists honest: every `unsafe`
//! block in the repo carries a written `SAFETY:` argument, every
//! `Relaxed` store in a `src/` tree carries a `// relaxed-ok:` reason,
//! nothing uses `static mut`, and the alias-enforced crates never name
//! an atomic backend directly.
//!
//! The call-graph pins live here too: the hot paths (oracle query
//! surface, FBDT expansion, packed simulation, the deque, pattern
//! sampling) certify panic-free and non-blocking — every surviving
//! site carries a written `panic-ok:` / `blocking-ok:` justification —
//! and known call chains stay resolvable so a resolver regression
//! cannot silently shrink the certified set.

use std::fs;
use std::path::{Path, PathBuf};

use cirlearn_lint::graph;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

/// Walks like the scanner does (every `.rs` under `crates/`, `vendor/`
/// and `tests/`), independently of `scan_tree`'s own collector, so a
/// count mismatch means files are silently skipping the lint.
fn count_rs(dir: &Path) -> usize {
    let mut n = 0;
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            dirs.push(path);
        } else if path.extension().is_some_and(|e| e == "rs") {
            n += 1;
        }
    }
    dirs.into_iter().map(|d| count_rs(&d)).sum::<usize>() + n
}

#[test]
fn the_workspace_has_zero_lint_violations() {
    let root = workspace_root();
    let report = cirlearn_lint::scan_tree(root).expect("scan the workspace");
    // Derive the expected count from an independent walk instead of a
    // hardcoded snapshot: new files can't silently skip scanning.
    let expected: usize = ["crates", "vendor", "tests"]
        .iter()
        .map(|d| count_rs(&root.join(d)))
        .sum();
    assert!(
        expected > 50,
        "independent walk found only {expected} files"
    );
    assert_eq!(
        report.files, expected,
        "scan_tree visited {} files but the tree holds {}; a directory \
         is escaping the lint",
        report.files, expected
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn the_hot_paths_certify_with_zero_deny_findings() {
    let a = graph::analyze_tree(workspace_root(), graph::default_roots())
        .expect("analyze the workspace");
    // Every default root must match something — a root that matches
    // nothing certifies nothing.
    for (spec, matched) in a.roots.iter().zip(&a.root_matches) {
        assert!(
            !matched.is_empty(),
            "hot-path root `{}` matched no function; did it move?",
            spec.pattern
        );
    }
    assert!(
        a.hot_count() >= 50,
        "suspiciously small hot set ({} functions); the resolver is \
         dropping edges",
        a.hot_count()
    );
    let deny: Vec<String> = a
        .deny_violations()
        .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule.name(), v.message))
        .collect();
    assert!(
        deny.is_empty(),
        "hot-path certification failed:\n{}",
        deny.join("\n")
    );
}

#[test]
fn known_hot_chains_stay_resolvable() {
    let a = graph::analyze_tree(workspace_root(), graph::default_roots())
        .expect("analyze the workspace");
    // The learning pipeline reaches the instrumented oracle: a chain
    // from the public entry point down to a query root must exist.
    let chain = a
        .path_between("Learner::learn_with", "Oracle::query_batch")
        .expect("Learner::learn_with must reach the oracle query surface");
    assert!(
        chain.len() >= 2,
        "degenerate chain {chain:?} — the entry point is not a root"
    );
    // Sampling reaches the oracle; simulation feeds the in-process
    // oracle; the FBDT reaches sampling.
    assert!(a.reaches("pattern_sampling", "Oracle::query_batch"));
    assert!(a.reaches("CircuitOracle::query", "Aig::eval_bits"));
    assert!(a.reaches("FbdtBuilder::step", "pattern_sampling"));
    // The instrumented wrapper is on the query path and itself hot.
    let idx = a
        .find("InstrumentedOracle::query")
        .expect("InstrumentedOracle::query exists");
    assert!(
        a.hot[idx].is_some(),
        "InstrumentedOracle::query fell out of the hot set"
    );
}
