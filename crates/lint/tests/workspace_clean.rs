//! The real workspace must be lint-clean.
//!
//! This is the test that keeps the allow-lists honest: every `unsafe`
//! block in the repo carries a written `SAFETY:` argument, every
//! `Relaxed` store in a `src/` tree carries a `// relaxed-ok:` reason,
//! nothing uses `static mut`, and the alias-enforced crates never name
//! an atomic backend directly.

use std::path::Path;

#[test]
fn the_workspace_has_zero_lint_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let report = cirlearn_lint::scan_tree(root).expect("scan the workspace");
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}); did the tree move?",
        report.files
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
