//! Workspace lint driver.
//!
//! Line mode (default): `cirlearn-lint [root]` scans `.rs` files under
//! `{root}/crates`, `{root}/vendor`, and `{root}/tests` with the
//! per-line concurrency rules, prints each violation as
//! `path:line: [rule] message`, and exits nonzero if any were found.
//!
//! Graph mode: `cirlearn-lint --graph [root] [--deny] [--roots p,...]
//! [--graph-out file.json] [--top N]` runs the whole-workspace
//! call-graph analysis over `crates/*/src`, enforces the hot-path
//! rules (panic-freedom, allocation, blocking calls) on functions
//! reachable from the hot roots, and prints the "hottest
//! panic-reachable functions" table. Plain `--graph` is advisory
//! (exit 0 unless the scan itself fails); `--graph --deny` exits 1 on
//! any deny-severity finding (hot-panic, hot-blocking) — warnings
//! (hot-alloc) never gate.

use std::path::Path;
use std::process::ExitCode;

use cirlearn_lint::graph::{self, RootSpec};

struct GraphArgs {
    root: String,
    deny: bool,
    roots: Option<Vec<String>>,
    graph_out: Option<String>,
    top: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--graph") {
        return graph_mode(&args);
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("cirlearn-lint: unknown flag {flag} (line mode takes only [root])");
        return ExitCode::from(2);
    }
    let root = args.first().cloned().unwrap_or_else(|| ".".to_string());
    let report = match cirlearn_lint::scan_tree(Path::new(&root)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cirlearn-lint: failed to scan {root}: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    eprintln!(
        "cirlearn-lint: scanned {} files, {} violation(s)",
        report.files,
        report.violations.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_graph_args(args: &[String]) -> Result<GraphArgs, String> {
    let mut parsed = GraphArgs {
        root: ".".to_string(),
        deny: false,
        roots: None,
        graph_out: None,
        top: 10,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--graph" => {}
            "--deny" => parsed.deny = true,
            "--roots" => {
                let v = it.next().ok_or("--roots needs a comma-separated list")?;
                parsed.roots = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--graph-out" => {
                let v = it.next().ok_or("--graph-out needs a file path")?;
                parsed.graph_out = Some(v.clone());
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a number")?;
                parsed.top = v.parse().map_err(|_| format!("bad --top value: {v}"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            pos => positional.push(pos.to_string()),
        }
    }
    if positional.len() > 1 {
        return Err(format!("too many positional arguments: {positional:?}"));
    }
    if let Some(root) = positional.into_iter().next() {
        parsed.root = root;
    }
    Ok(parsed)
}

fn graph_mode(args: &[String]) -> ExitCode {
    let parsed = match parse_graph_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cirlearn-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let roots: Vec<RootSpec> = match &parsed.roots {
        Some(specs) => specs
            .iter()
            .enumerate()
            .map(|(i, s)| graph::parse_root_spec(s, i, specs.len()))
            .collect(),
        None => graph::default_roots(),
    };
    let analysis = match graph::analyze_tree(Path::new(&parsed.root), roots) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cirlearn-lint: failed to analyze {}: {e}", parsed.root);
            return ExitCode::from(2);
        }
    };
    for v in &analysis.violations {
        println!(
            "{}:{}: [{}/{}] {}",
            v.path,
            v.line,
            v.rule.name(),
            v.rule.severity().name(),
            v.message
        );
    }
    let deny = analysis.deny_violations().count();
    let warn = analysis.warn_violations().count();
    let matched_roots: usize = analysis.root_matches.iter().map(|m| m.len()).sum();
    eprintln!(
        "cirlearn-lint: graph over {} files: {} functions, {} edges, {} roots matched, {} hot; {} deny, {} warn finding(s)",
        analysis.files,
        analysis.functions.len(),
        analysis.edges.len(),
        matched_roots,
        analysis.hot_count(),
        deny,
        warn
    );
    let table = analysis.render_hottest(parsed.top);
    if !table.is_empty() {
        eprint!("{table}");
    }
    if let Some(out) = &parsed.graph_out {
        if let Err(e) = std::fs::write(out, analysis.to_json()) {
            eprintln!("cirlearn-lint: failed to write {out}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("cirlearn-lint: graph written to {out}");
    }
    // Sanity: an analysis where no root matched certifies nothing.
    if matched_roots == 0 {
        eprintln!("cirlearn-lint: warning: no root pattern matched any function");
        if parsed.deny {
            return ExitCode::FAILURE;
        }
    }
    if parsed.deny && deny > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
