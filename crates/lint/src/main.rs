//! Workspace lint driver: `cirlearn-lint [root]`.
//!
//! Scans `.rs` files under `{root}/crates`, `{root}/vendor`, and
//! `{root}/tests` (default root: the current directory), prints each
//! violation as `path:line: [rule] message`, and exits nonzero if any
//! were found — so CI can gate on it.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let report = match cirlearn_lint::scan_tree(Path::new(&root)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cirlearn-lint: failed to scan {root}: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    eprintln!(
        "cirlearn-lint: scanned {} files, {} violation(s)",
        report.files,
        report.violations.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
