//! Project concurrency lints for the cirlearn workspace.
//!
//! `cargo run -p cirlearn-lint` scans every `.rs` file under
//! `crates/`, `vendor/`, and `tests/` and enforces the conventions the
//! concurrency toolkit (weak-memory loom, the happens-before race
//! detector, miri in CI) relies on to stay meaningful:
//!
//! - **unsafe-safety-comment** — every `unsafe` block, `unsafe impl`,
//!   and `unsafe trait` carries a `SAFETY:` comment on the same line or
//!   in the contiguous comment block directly above it. An argument
//!   that was never written down cannot be reviewed.
//! - **static-mut** — `static mut` is banned outright; it is a data
//!   race waiting for a second thread. Use an atomic from the crate's
//!   `sync` alias or a lock instead.
//! - **relaxed-store** — a `Relaxed` *store* (plain store, swap, or
//!   `fetch_*` read-modify-write, or the success ordering of a
//!   compare-exchange) publishes nothing and is almost always a bug in
//!   code that later reads the location from another thread. Each
//!   legitimate site must be annotated `// relaxed-ok: <reason>` so the
//!   allow-list is explicit and greppable. `Relaxed` *loads* and
//!   compare-exchange *failure* orderings are exempt: the failure
//!   ordering governs a load. Applies to `src/` trees only — litmus
//!   tests and seeded-bug tests legitimately use `Relaxed` everywhere.
//! - **atomic-alias** — concurrency-touched crates (`crates/telemetry`,
//!   `crates/exec`) must route atomics through their cfg-switchable
//!   `sync` alias rather than naming `std::sync::atomic`,
//!   `loom::sync::`, or `tsan::sync::` directly; a direct use silently
//!   escapes the model checker and the race detector. The alias module
//!   itself opts out with a `cirlearn-lint: allow(atomic-alias)` file
//!   marker.
//!
//! The scanner is deliberately syn-free: a line/token scanner over a
//! small state machine that strips string literals and separates
//! comments from code. That keeps it dependency-free and fast, at the
//! cost of being an approximation — it is a project lint, not a parser.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod graph;

/// How severe a violated rule is.
///
/// `Deny` rules gate exit codes (a panic or a blocking call in a hot
/// loop is a correctness hazard for the parallel executor); `Warn`
/// rules are advisory (an allocation in a hot loop costs throughput,
/// not safety) and never fail a build on their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Gates the exit code.
    Deny,
    /// Advisory only.
    Warn,
}

impl Severity {
    /// The lowercase name printed in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// Which lint rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// An `unsafe` block/impl/trait without a `SAFETY:` comment.
    UnsafeSafetyComment,
    /// A `static mut` item.
    StaticMut,
    /// A `Relaxed` store outside the `// relaxed-ok:` allow-list.
    RelaxedStore,
    /// A direct atomic import in an alias-enforced crate.
    AtomicAlias,
    /// A panic-capable construct (`unwrap`/`expect`/`panic!`/`assert!`/
    /// `unreachable!`/slice indexing) in a function reachable from a
    /// hot-path root, without a `// panic-ok:` justification.
    HotPanic,
    /// A heap allocation (`Vec::new`/`Box::new`/`format!`/`clone`/…)
    /// in a function reachable from a hot-path root, without an
    /// `// alloc-ok:` justification.
    HotAlloc,
    /// A blocking call (`Mutex::lock`, file/process I/O, `println!`)
    /// in a hot function or anywhere in `crates/exec/src`, without a
    /// `// blocking-ok:` justification.
    HotBlocking,
}

impl Rule {
    /// The kebab-case name printed in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeSafetyComment => "unsafe-safety-comment",
            Rule::StaticMut => "static-mut",
            Rule::RelaxedStore => "relaxed-store",
            Rule::AtomicAlias => "atomic-alias",
            Rule::HotPanic => "hot-panic",
            Rule::HotAlloc => "hot-alloc",
            Rule::HotBlocking => "hot-blocking",
        }
    }

    /// The rule's severity. All line rules and two of the three
    /// hot-path families gate; allocation findings advise.
    pub fn severity(self) -> Severity {
        match self {
            Rule::UnsafeSafetyComment
            | Rule::StaticMut
            | Rule::RelaxedStore
            | Rule::AtomicAlias
            | Rule::HotPanic
            | Rule::HotBlocking => Severity::Deny,
            Rule::HotAlloc => Severity::Warn,
        }
    }
}

/// One finding: a rule violated at a specific line of a specific file.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path of the offending file, relative to the scanned root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Result of scanning a tree: how much was covered and what was found.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// All violations, in path/line order of discovery.
    pub violations: Vec<Violation>,
}

/// A source line split into its code text and its comment text.
///
/// String and char literal *contents* are blanked from the code text
/// (replaced by a single space) so literal bytes never trigger or
/// suppress a rule; comment text is preserved separately because two of
/// the rules key off `SAFETY:` / `relaxed-ok:` annotations.
#[derive(Debug, Default, Clone)]
pub(crate) struct SplitLine {
    pub(crate) code: String,
    pub(crate) comment: String,
}

impl SplitLine {
    fn is_pure_comment(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }
}

/// Lexer state carried across lines.
enum State {
    Code,
    /// Inside nested `/* */` comments, with the current depth.
    Block(u32),
    /// Inside a normal `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` plus this many `#`s.
    RawStr(usize),
}

/// Split a whole file into per-line (code, comment) pairs.
pub(crate) fn split_lines(contents: &str) -> Vec<SplitLine> {
    let mut out = Vec::new();
    let mut cur = SplitLine::default();
    let mut state = State::Code;
    let chars: Vec<char> = contents.chars().collect();
    let mut i = 0;

    // True when `chars[i]` could continue an identifier, meaning an
    // `r` / `b` at `i` is part of a word, not a literal prefix.
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment: the rest of the line is comment.
                    let mut j = i;
                    while j < chars.len() && chars[j] != '\n' {
                        cur.comment.push(chars[j]);
                        j += 1;
                    }
                    i = j;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    i += 2;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string prefix: r"…", r#"…"#,
                    // b"…", br#"…"#.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'));
                    if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
                        cur.code.push(' ');
                        if raw {
                            state = State::RawStr(hashes);
                        } else {
                            state = State::Str;
                        }
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push(' ');
                    state = State::Str;
                    i += 1;
                } else if c == '\'' && !prev_ident {
                    // Char literal vs lifetime. A char literal closes
                    // with a `'` within a few characters; a lifetime
                    // never closes.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing
                        // quote (bounded — `\u{10FFFF}` is the longest).
                        let mut j = i + 2;
                        let mut steps = 0;
                        while j < chars.len() && chars[j] != '\'' && steps < 10 {
                            j += 1;
                            steps += 1;
                        }
                        cur.code.push(' ');
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push(' ');
                        i += 3;
                    } else {
                        // Lifetime (or `'static` etc.): keep as code.
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    out.push(cur);
    out
}

/// Does line `idx` carry `needle` in its own comment, in the
/// contiguous pure-comment block directly above it, or above the
/// statement it continues?
///
/// rustfmt may split a call across lines (`self.sum\n.fetch_add(...)`),
/// leaving the annotated comment above the *receiver* line — so the
/// walk also passes through code lines that are mid-statement (no
/// terminating `;`/`{`/`}`), checking their trailing comments on the
/// way. A blank line or a completed statement breaks contiguity.
pub(crate) fn annotated(lines: &[SplitLine], idx: usize, needle: &str) -> bool {
    if lines[idx].comment.contains(needle) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.is_pure_comment() {
            if l.comment.contains(needle) {
                return true;
            }
        } else if l.is_blank() {
            return false;
        } else {
            if l.comment.contains(needle) {
                return true;
            }
            let code = l.code.trim_end();
            if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
                return false;
            }
            // Mid-statement continuation: keep walking up.
        }
    }
    false
}

/// Find word-boundary occurrences of `word` in `code`.
pub(crate) fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let p = from + rel;
        let before_ok = p == 0 || !is_ident(bytes[p - 1]);
        let end = p + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(p);
        }
        from = end;
    }
    out
}

/// Method calls that make a `Relaxed` ordering on the same line a
/// *store* (or the success side of a read-modify-write).
const STORE_CALLS: &[&str] = &[
    ".store(",
    ".swap(",
    "fetch_add(",
    "fetch_sub(",
    "fetch_and(",
    "fetch_or(",
    "fetch_xor(",
    "fetch_min(",
    "fetch_max(",
    "fetch_update(",
];

/// Crate source trees that must route atomics through their `sync`
/// alias (relative, `/`-separated paths).
const ALIAS_ENFORCED: &[&str] = &["crates/telemetry/src", "crates/exec/src"];

/// File marker opting an alias module itself out of the atomic-alias
/// rule.
const ALIAS_MARKER: &str = "cirlearn-lint: allow(atomic-alias)";

/// Paths the atomic-alias rule flags when used directly in enforced
/// crates.
const DIRECT_ATOMICS: &[&str] = &["std::sync::atomic", "loom::sync::", "tsan::sync::"];

/// Scan one file's contents. `path` is the root-relative,
/// `/`-separated path used both for diagnostics and for path-scoped
/// rules.
pub fn scan_source(path: &str, contents: &str) -> Vec<Violation> {
    let lines = split_lines(contents);
    let in_src = path.contains("/src/") || path.starts_with("src/");
    let alias_enforced =
        ALIAS_ENFORCED.iter().any(|d| path.starts_with(d)) && !contents.contains(ALIAS_MARKER);
    let mut out = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String| {
        out.push(Violation {
            path: path.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_str();

        // Rule: unsafe-safety-comment.
        for p in word_positions(code, "unsafe") {
            let rest = code[p + "unsafe".len()..].trim_start();
            // `unsafe fn` is a declaration — the obligation sits on the
            // callers and on the inner blocks `unsafe_op_in_unsafe_fn`
            // forces. Everything else (`{`, `impl`, `trait`, or an
            // opening brace on the next line) needs a written argument.
            if rest.starts_with("fn") {
                continue;
            }
            if !annotated(&lines, idx, "SAFETY:") {
                push(
                    idx,
                    Rule::UnsafeSafetyComment,
                    "`unsafe` without a `SAFETY:` comment on this line or \
                     in the comment block directly above"
                        .to_string(),
                );
            }
        }

        // Rule: static-mut.
        if code.contains("static mut ") {
            push(
                idx,
                Rule::StaticMut,
                "`static mut` is banned; use an atomic from the crate's \
                 `sync` alias or a lock"
                    .to_string(),
            );
        }

        // Rule: relaxed-store (src trees only).
        if in_src && code.contains("Ordering::Relaxed") {
            let is_store_call = STORE_CALLS.iter().any(|c| code.contains(c));
            // In a compare-exchange, `Ordering::Relaxed,` (followed by
            // a comma) is the success ordering — a store; a trailing
            // `Ordering::Relaxed)` is the failure ordering — a load.
            let is_cas_success =
                code.contains("compare_exchange") && code.contains("Ordering::Relaxed,");
            if (is_store_call || is_cas_success) && !annotated(&lines, idx, "relaxed-ok:") {
                push(
                    idx,
                    Rule::RelaxedStore,
                    "`Relaxed` store without a `// relaxed-ok:` \
                     justification on this line or directly above"
                        .to_string(),
                );
            }
        }

        // Rule: atomic-alias (enforced crates only).
        if alias_enforced {
            for direct in DIRECT_ATOMICS {
                if code.contains(direct) {
                    push(
                        idx,
                        Rule::AtomicAlias,
                        format!(
                            "direct use of `{direct}` in an alias-enforced \
                             crate; route through the crate's `sync` alias \
                             so loom and the race detector see it"
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, skipping build output
/// and hidden directories.
pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the workspace rooted at `root`: every `.rs` file under
/// `crates/`, `vendor/`, and `tests/`.
pub fn scan_tree(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "vendor", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report::default();
    for file in files {
        let contents = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        report.violations.extend(scan_source(&rel, &contents));
        report.files += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<Rule> {
        scan_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unannotated_unsafe_block_is_flagged() {
        let src = "fn f() {\n    let x = unsafe { danger() };\n}\n";
        let found = scan_source("crates/x/src/a.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::UnsafeSafetyComment);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_satisfies_the_rule() {
        let above = "fn f() {\n    // SAFETY: danger() is fine here.\n    let x = unsafe { danger() };\n}\n";
        let inline = "fn f() {\n    let x = unsafe { danger() }; // SAFETY: fine.\n}\n";
        let multi = "fn f() {\n    // The pointer came from Box::into_raw.\n    // SAFETY: see above.\n    let x = unsafe { danger() };\n}\n";
        for src in [above, inline, multi] {
            assert!(rules("crates/x/src/a.rs", src).is_empty(), "{src}");
        }
    }

    #[test]
    fn a_blank_line_breaks_safety_comment_contiguity() {
        let src = "fn f() {\n    // SAFETY: stale, refers to something else.\n\n    let x = unsafe { danger() };\n}\n";
        assert_eq!(
            rules("crates/x/src/a.rs", src),
            vec![Rule::UnsafeSafetyComment]
        );
    }

    #[test]
    fn unsafe_impl_and_trait_need_safety_but_unsafe_fn_does_not() {
        let imp = "unsafe impl Send for Foo {}\n";
        assert_eq!(
            rules("crates/x/src/a.rs", imp),
            vec![Rule::UnsafeSafetyComment]
        );
        let tr = "unsafe trait Zeroable {}\n";
        assert_eq!(
            rules("crates/x/src/a.rs", tr),
            vec![Rule::UnsafeSafetyComment]
        );
        let f = "unsafe fn danger() {}\n";
        assert!(rules("crates/x/src/a.rs", f).is_empty());
    }

    #[test]
    fn the_word_unsafe_in_strings_and_comments_is_ignored() {
        let src = "// unsafe is a scary word\nfn f() {\n    let s = \"unsafe { }\";\n}\n";
        assert!(rules("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn static_mut_is_always_flagged() {
        let src = "static mut COUNTER: u64 = 0;\n";
        assert_eq!(rules("crates/x/src/a.rs", src), vec![Rule::StaticMut]);
        // ... even in tests.
        assert_eq!(rules("crates/x/tests/t.rs", src), vec![Rule::StaticMut]);
    }

    #[test]
    fn relaxed_store_without_annotation_is_flagged_in_src() {
        let src = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/x/src/a.rs", src), vec![Rule::RelaxedStore]);
        let rmw = "fn f(a: &AtomicU64) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/x/src/a.rs", rmw), vec![Rule::RelaxedStore]);
    }

    #[test]
    fn annotated_relaxed_store_passes() {
        let src = "fn f(a: &AtomicU64) {\n    // relaxed-ok: counter only ever read after join.\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert!(rules("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn an_annotation_survives_a_rustfmt_split_statement() {
        // rustfmt may move the call onto a continuation line below the
        // receiver; the annotation above the statement still counts.
        let src = "fn f(a: &AtomicU64) {\n    // relaxed-ok: published by the Release add below.\n    a.counter\n        .fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(rules("crates/x/src/a.rs", src).is_empty());
        // ...but an annotation above a *completed* earlier statement
        // does not leak onto the next one.
        let leak = "fn f(a: &AtomicU64) {\n    // relaxed-ok: for the first store only.\n    a.store(1, Ordering::Relaxed);\n    a.store(2, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/x/src/a.rs", leak), vec![Rule::RelaxedStore]);
    }

    #[test]
    fn relaxed_loads_and_cas_failure_orderings_are_exempt() {
        let load = "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed)\n}\n";
        assert!(rules("crates/x/src/a.rs", load).is_empty());
        let cas_fail = "fn f(a: &AtomicU64) {\n    let _ = a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed);\n}\n";
        assert!(rules("crates/x/src/a.rs", cas_fail).is_empty());
    }

    #[test]
    fn cas_success_relaxed_is_flagged() {
        let src = "fn f(a: &AtomicU64) {\n    let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/x/src/a.rs", src), vec![Rule::RelaxedStore]);
    }

    #[test]
    fn relaxed_stores_outside_src_trees_are_not_policed() {
        let src = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert!(rules("crates/x/tests/litmus.rs", src).is_empty());
        assert!(rules("vendor/loom/tests/weak.rs", src).is_empty());
    }

    #[test]
    fn direct_atomics_in_enforced_crates_are_flagged() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(
            rules("crates/telemetry/src/evil.rs", src),
            vec![Rule::AtomicAlias]
        );
        assert_eq!(
            rules("crates/exec/src/evil.rs", src),
            vec![Rule::AtomicAlias]
        );
        // Unenforced crates may talk to std atomics directly.
        assert!(rules("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn the_alias_marker_opts_a_file_out() {
        let src = "// cirlearn-lint: allow(atomic-alias)\nuse std::sync::atomic::AtomicU64;\nuse loom::sync::atomic::AtomicU64 as L;\n";
        assert!(rules("crates/telemetry/src/sync.rs", src).is_empty());
    }

    #[test]
    fn string_literals_never_trigger_or_suppress_rules() {
        // Patterns inside strings must not trigger...
        let s1 = "fn f() {\n    let s = \"static mut X: u64 = 0;\";\n}\n";
        assert!(rules("crates/x/src/a.rs", s1).is_empty());
        // ...and an annotation inside a string must not suppress.
        let s2 = "fn f(a: &AtomicU64) {\n    let s = \"relaxed-ok: nope\";\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(rules("crates/x/src/a.rs", s2), vec![Rule::RelaxedStore]);
    }

    #[test]
    fn raw_strings_and_char_literals_are_stripped() {
        let raw = "fn f() {\n    let s = r#\"unsafe { static mut }\"#;\n}\n";
        assert!(rules("crates/x/src/a.rs", raw).is_empty());
        let chars = "fn f() {\n    let q = '\"';\n    let e = '\\'';\n    let x = unsafe { danger() };\n}\n";
        assert_eq!(
            rules("crates/x/src/a.rs", chars),
            vec![Rule::UnsafeSafetyComment]
        );
    }

    #[test]
    fn block_comments_count_as_comment_text() {
        let src =
            "fn f() {\n    /* SAFETY: argued at length. */\n    let x = unsafe { danger() };\n}\n";
        assert!(rules("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn violations_render_with_path_line_and_rule() {
        let src = "static mut X: u64 = 0;\n";
        let v = &scan_source("crates/x/src/a.rs", src)[0];
        let rendered = v.to_string();
        assert!(
            rendered.starts_with("crates/x/src/a.rs:1: [static-mut]"),
            "{rendered}"
        );
    }
}
