//! Workspace call-graph analysis: hot-path certification.
//!
//! A two-pass, syn-free analyzer over every `crates/*/src` tree (same
//! string/comment-aware line scanner as the per-line rules — a project
//! lint, not a parser):
//!
//! 1. **Extraction** — records every `fn` definition (bare name,
//!    enclosing `impl`/`trait` context, `file:line`, body span) and
//!    every call site inside a function body (`name(...)`,
//!    `.name(...)`, `Path::name(...)`, turbofish included). Bodies of
//!    `#[cfg(test)]` / `#[test]` items are skipped — tests unwrap
//!    freely and are not hot code.
//! 2. **Resolution** — builds a conservative call graph. A qualified
//!    call `Q::f` resolves to every workspace `fn f` whose impl type
//!    *or* trait is `Q` (none ⇒ the call is external, e.g. `Vec::new`,
//!    and adds no edge). A method call `x.f(...)` resolves to **every**
//!    workspace method `f` (the receiver type is unknown — the
//!    ambiguity-widening rule: over-approximate rather than miss an
//!    edge — but a `.f()` call can never land on a free function). A
//!    bare call `f(...)` resolves to every free `fn f` (Rust has no
//!    `use Type::method`, so it cannot land on a method). Reachability
//!    can over-claim; it cannot under-claim. The lint crate's own
//!    sources are excluded: a compile-time tool never linked into the
//!    runtime binaries.
//!
//! Reachability is computed from declared hot-path roots (the oracle
//! query surface, FBDT node expansion, packed simulation, the
//! work-stealing deque, `PatternSampling`), and three rule families are
//! enforced on reachable function bodies only:
//!
//! - **hot-panic** (deny) — `unwrap`/`expect`, `panic!`-family macros,
//!   `assert!`-family macros, and slice indexing `x[i]`. Opt-out per
//!   site with `// panic-ok: <reason>`. `debug_assert!` is exempt (it
//!   compiles out of release hot paths).
//! - **hot-alloc** (warn) — `Vec::new`/`with_capacity`/`vec![`,
//!   `Box::new`, `format!`, `to_vec`/`to_string`/`to_owned`, `clone`,
//!   `collect`, `push`. Opt-out with `// alloc-ok: <reason>`.
//! - **hot-blocking** (deny) — `Mutex::lock`, file/process I/O,
//!   channel `recv`, `thread::sleep`, `println!`/`eprintln!`. Enforced
//!   in hot functions *and* in every function of `crates/exec/src`
//!   (executor code must never block, hot or not). Opt-out with
//!   `// blocking-ok: <reason>`.
//!
//! Each root carries the attribution-ledger *stage* its traffic lands
//! on, with weights taken from the committed `BENCH_table2.json`
//! baseline (on case_1, ~1.44 s of the 1.62 s wall clock is
//! `oracle.query_ns`), so findings and the "hottest panic-reachable
//! functions" table rank by measured cost attribution, not
//! alphabetically.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::{
    annotated, collect_rs, split_lines, word_positions, Rule, Severity, SplitLine, Violation,
};

/// A hot-path root: functions matching `pattern` seed reachability.
///
/// `pattern` is either `Type::name` (matches a `fn name` whose
/// enclosing impl type *or* trait is `Type`) or a bare `name` (matches
/// every `fn name`). `stage` names the attribution-ledger stage the
/// root's traffic lands on; `weight` ranks stages by measured cost
/// (higher = hotter).
#[derive(Debug, Clone)]
pub struct RootSpec {
    /// `Type::name` or bare `name`.
    pub pattern: String,
    /// Attribution-ledger stage (e.g. `oracle`, `support`, `fbdt`).
    pub stage: String,
    /// Stage heat: higher ranks hotter in reports.
    pub weight: u32,
}

impl RootSpec {
    /// A root with an explicit stage and weight.
    pub fn new(pattern: &str, stage: &str, weight: u32) -> RootSpec {
        RootSpec {
            pattern: pattern.to_string(),
            stage: stage.to_string(),
            weight,
        }
    }
}

/// The default root set: the query/FBDT/simulation/executor/sampling
/// hot paths named by ROADMAP item 1.
///
/// Stage weights follow the committed attribution baseline
/// (`BENCH_table2.json`): the oracle query surface dominates wall
/// clock (~89% on case_1), support-identification sampling issues the
/// bulk of those queries, FBDT expansion drives the learning loop,
/// packed simulation underlies the in-process oracle, and the deque is
/// the executor substrate the parallelism PR will put under all of
/// them.
pub fn default_roots() -> Vec<RootSpec> {
    vec![
        RootSpec::new("Oracle::query", "oracle", 5),
        RootSpec::new("Oracle::try_query", "oracle", 5),
        RootSpec::new("Oracle::query_batch", "oracle", 5),
        RootSpec::new("Oracle::try_query_batch", "oracle", 5),
        RootSpec::new("pattern_sampling", "support", 4),
        RootSpec::new("sample_output", "support", 4),
        RootSpec::new("FbdtBuilder::step", "fbdt", 3),
        RootSpec::new("Aig::simulate_nodes", "sim", 2),
        RootSpec::new("Aig::simulate", "sim", 2),
        RootSpec::new("Aig::eval_batch", "sim", 2),
        RootSpec::new("Worker::push", "exec", 1),
        RootSpec::new("Worker::pop", "exec", 1),
        RootSpec::new("Stealer::steal", "exec", 1),
        RootSpec::new("RawDeque::push", "exec", 1),
        RootSpec::new("RawDeque::pop", "exec", 1),
        RootSpec::new("RawDeque::steal", "exec", 1),
    ]
}

/// Parses `--roots` specs: `pattern[@stage[:weight]]`, comma-split by
/// the caller. Unnamed stages default to `custom`; unstated weights
/// rank earlier specs hotter.
pub fn parse_root_spec(spec: &str, position: usize, total: usize) -> RootSpec {
    let (pattern, rest) = match spec.split_once('@') {
        Some((p, r)) => (p, Some(r)),
        None => (spec, None),
    };
    let (stage, weight) = match rest {
        Some(r) => match r.split_once(':') {
            Some((s, w)) => (s.to_string(), w.parse().unwrap_or(0)),
            None => (r.to_string(), (total - position) as u32),
        },
        None => ("custom".to_string(), (total - position) as u32),
    };
    RootSpec {
        pattern: pattern.trim().to_string(),
        stage,
        weight,
    }
}

/// One extracted function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Base name of the enclosing `impl` type, if any.
    pub type_ctx: Option<String>,
    /// Base name of the implemented (or declaring) trait, if any.
    pub trait_ctx: Option<String>,
    /// Root-relative, `/`-separated file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Call sites inside this function's body.
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// `Type::name` (or `Trait::name` for trait-default methods), or
    /// the bare name for free functions.
    pub fn qualified(&self) -> String {
        match self.type_ctx.as_ref().or(self.trait_ctx.as_ref()) {
            Some(ctx) => format!("{}::{}", ctx, self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name.
    pub name: String,
    /// Last path segment before the name (`Q` in `Q::f(...)`), with
    /// `Self` already resolved to the enclosing impl type. `None` for
    /// method calls and unqualified free calls.
    pub qualifier: Option<String>,
    /// Whether this is a `.name(...)` method call (widens to methods
    /// only) as opposed to a bare `name(...)` call (free functions
    /// only).
    pub method: bool,
    /// 1-based line number.
    pub line: usize,
}

/// Why a function is hot: the stage that reaches it and how far it
/// sits from that stage's roots.
#[derive(Debug, Clone)]
pub struct HotInfo {
    /// Hottest attribution stage reaching this function.
    pub stage: String,
    /// That stage's weight.
    pub weight: u32,
    /// Call-graph distance from the nearest root of that stage
    /// (0 = the function is itself a root).
    pub distance: usize,
}

/// Per-function rule-site tally (used by the hottest-functions table).
#[derive(Debug, Clone, Default)]
pub struct SiteCounts {
    /// Unjustified deny-severity findings.
    pub deny: usize,
    /// Unjustified warn-severity findings.
    pub warn: usize,
    /// Sites silenced by a `panic-ok:`/`alloc-ok:`/`blocking-ok:`
    /// marker (the justified residue the table still reports).
    pub justified: usize,
}

/// The result of a whole-workspace call-graph analysis.
#[derive(Debug)]
pub struct GraphAnalysis {
    /// Number of `.rs` files extracted.
    pub files: usize,
    /// Every extracted function, in file/line order.
    pub functions: Vec<FnDef>,
    /// Resolved call edges (caller index → callee index), deduplicated.
    pub edges: Vec<(usize, usize)>,
    /// Hot-reachability info per function index (`None` = cold).
    pub hot: Vec<Option<HotInfo>>,
    /// The root set used.
    pub roots: Vec<RootSpec>,
    /// Function indices matched by each root spec (parallel to
    /// `roots`).
    pub root_matches: Vec<Vec<usize>>,
    /// All rule findings, hot functions only, in file/line order.
    pub violations: Vec<Violation>,
    /// Per-function site tallies (parallel to `functions`).
    pub sites: Vec<SiteCounts>,
}

/// Analyzes the workspace rooted at `root`: every `.rs` file under
/// `crates/*/src`.
pub fn analyze_tree(root: &Path, roots: Vec<RootSpec>) -> io::Result<GraphAnalysis> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            // The lint crate is a compile-time tool: it is never
            // linked into the runtime binaries, so its functions must
            // not be widened into the hot graph.
            if dir.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let contents = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, contents));
    }
    Ok(analyze_sources(&sources, roots))
}

/// Analyzes in-memory sources (`(root-relative path, contents)`
/// pairs). The pure core of [`analyze_tree`], used directly by tests.
pub fn analyze_sources(sources: &[(String, String)], roots: Vec<RootSpec>) -> GraphAnalysis {
    let mut functions: Vec<FnDef> = Vec::new();
    // Per file: split lines + owner (function index) per line.
    let mut file_lines: Vec<(String, Vec<SplitLine>, Vec<Option<usize>>)> = Vec::new();
    for (path, contents) in sources {
        let lines = split_lines(contents);
        let owners = extract_file(path, &lines, &mut functions);
        file_lines.push((path.clone(), lines, owners));
    }

    // Name index for resolution.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in functions.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }

    // Resolve call edges: qualified calls narrow by impl type/trait
    // (no match ⇒ external, no edge); unqualified calls widen to every
    // same-named definition.
    let mut edge_set: HashSet<(usize, usize)> = HashSet::new();
    for (caller, f) in functions.iter().enumerate() {
        for call in &f.calls {
            let candidates = by_name.get(call.name.as_str()).map_or(&[][..], |v| v);
            match &call.qualifier {
                Some(q) => {
                    for &callee in candidates {
                        let g = &functions[callee];
                        if g.type_ctx.as_deref() == Some(q) || g.trait_ctx.as_deref() == Some(q) {
                            edge_set.insert((caller, callee));
                        }
                    }
                }
                None if call.method => {
                    // Method call on an unknown receiver: widen to
                    // every *method* of that name (a `.f()` call can
                    // never land on a free function).
                    for &callee in candidates {
                        let g = &functions[callee];
                        if g.type_ctx.is_some() || g.trait_ctx.is_some() {
                            edge_set.insert((caller, callee));
                        }
                    }
                }
                None => {
                    // Bare call `f(...)`: free functions only (Rust
                    // has no `use Type::method`, so a bare path call
                    // cannot reach a method).
                    for &callee in candidates {
                        let g = &functions[callee];
                        if g.type_ctx.is_none() && g.trait_ctx.is_none() {
                            edge_set.insert((caller, callee));
                        }
                    }
                }
            }
        }
    }
    let mut edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
    edges.sort_unstable();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); functions.len()];
    for &(a, b) in &edges {
        adj[a].push(b);
    }

    // Match roots and flood from the hottest stage down, so each
    // function is claimed by the hottest stage reaching it.
    let root_matches: Vec<Vec<usize>> = roots
        .iter()
        .map(|r| {
            functions
                .iter()
                .enumerate()
                .filter(|(_, f)| matches_root(&r.pattern, f))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let mut hot: Vec<Option<HotInfo>> = vec![None; functions.len()];
    let mut order: Vec<usize> = (0..roots.len()).collect();
    order.sort_by(|&a, &b| roots[b].weight.cmp(&roots[a].weight));
    for ri in order {
        let spec = &roots[ri];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &i in &root_matches[ri] {
            if hot[i].is_none() {
                hot[i] = Some(HotInfo {
                    stage: spec.stage.clone(),
                    weight: spec.weight,
                    distance: 0,
                });
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            let d = hot[i].as_ref().map_or(0, |h| h.distance);
            for &j in &adj[i] {
                if hot[j].is_none() {
                    hot[j] = Some(HotInfo {
                        stage: spec.stage.clone(),
                        weight: spec.weight,
                        distance: d + 1,
                    });
                    queue.push_back(j);
                }
            }
        }
    }

    // Enforce the hot-path rules over the owned lines of each hot
    // function (plus the blocking rule everywhere in crates/exec/src).
    let mut violations = Vec::new();
    let mut sites = vec![SiteCounts::default(); functions.len()];
    for (path, lines, owners) in &file_lines {
        let in_exec = path.starts_with("crates/exec/src");
        for (idx, l) in lines.iter().enumerate() {
            let Some(owner) = owners.get(idx).copied().flatten() else {
                continue;
            };
            let info = hot[owner].as_ref();
            if info.is_none() && !in_exec {
                continue;
            }
            let ctx = RuleCtx {
                path,
                lines,
                idx,
                code: l.code.as_str(),
                owner: &functions[owner],
                info,
            };
            if let Some(h) = info {
                scan_panic_rule(&ctx, h, &mut violations, &mut sites[owner]);
                scan_alloc_rule(&ctx, h, &mut violations, &mut sites[owner]);
            }
            scan_blocking_rule(&ctx, in_exec, &mut violations, &mut sites[owner]);
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    GraphAnalysis {
        files: sources.len(),
        functions,
        edges,
        hot,
        roots,
        root_matches,
        violations,
        sites,
    }
}

impl GraphAnalysis {
    /// Number of hot (root-reachable) functions.
    pub fn hot_count(&self) -> usize {
        self.hot.iter().filter(|h| h.is_some()).count()
    }

    /// Findings at deny severity.
    pub fn deny_violations(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.rule.severity() == Severity::Deny)
    }

    /// Findings at warn severity.
    pub fn warn_violations(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.rule.severity() == Severity::Warn)
    }

    /// Index of the first function whose qualified name (or bare name)
    /// equals `name`.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.functions
            .iter()
            .position(|f| f.qualified() == name || f.name == name)
    }

    /// Whether the call graph contains a path from the function named
    /// `from` to any function matching root-style pattern `to`.
    pub fn reaches(&self, from: &str, to: &str) -> bool {
        self.path_between(from, to).is_some()
    }

    /// A call chain (qualified names) from `from` to the first
    /// function matching root-style pattern `to`, if one exists.
    pub fn path_between(&self, from: &str, to: &str) -> Option<Vec<String>> {
        let start = self.find(from)?;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.functions.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.functions.len()];
        let mut seen = vec![false; self.functions.len()];
        let mut queue = VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(i) = queue.pop_front() {
            if matches_root(to, &self.functions[i]) {
                let mut chain = vec![i];
                let mut cur = i;
                while let Some(p) = prev[cur] {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                return Some(
                    chain
                        .into_iter()
                        .map(|k| self.functions[k].qualified())
                        .collect(),
                );
            }
            for &j in &adj[i] {
                if !seen[j] {
                    seen[j] = true;
                    prev[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        None
    }

    /// The hottest panic-reachable functions: hot functions with at
    /// least one panic-capable site (unjustified finding or justified
    /// marker), ranked by attribution stage weight, then unjustified
    /// deny findings, then justified sites, then nearness to a root.
    pub fn hottest(&self, n: usize) -> Vec<usize> {
        let mut ranked: Vec<usize> = (0..self.functions.len())
            .filter(|&i| {
                self.hot[i].is_some() && (self.sites[i].deny > 0 || self.sites[i].justified > 0)
            })
            .collect();
        ranked.sort_by(|&a, &b| {
            let ha = self.hot[a].as_ref().expect("filtered to hot");
            let hb = self.hot[b].as_ref().expect("filtered to hot");
            hb.weight
                .cmp(&ha.weight)
                .then(self.sites[b].deny.cmp(&self.sites[a].deny))
                .then(self.sites[b].justified.cmp(&self.sites[a].justified))
                .then(ha.distance.cmp(&hb.distance))
                .then(
                    self.functions[a]
                        .qualified()
                        .cmp(&self.functions[b].qualified()),
                )
        });
        ranked.truncate(n);
        ranked
    }

    /// Renders the hottest-functions table (empty string when no hot
    /// function has a panic-capable site).
    pub fn render_hottest(&self, n: usize) -> String {
        let ranked = self.hottest(n);
        if ranked.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hottest panic-reachable functions (top {}, by attribution stage):",
            ranked.len()
        );
        let _ = writeln!(
            out,
            "  {:<8} {:<4} {:<44} {:>4} {:>4}  location",
            "stage", "dist", "function", "deny", "ok"
        );
        for i in ranked {
            let h = self.hot[i].as_ref().expect("ranked functions are hot");
            let f = &self.functions[i];
            let _ = writeln!(
                out,
                "  {:<8} {:<4} {:<44} {:>4} {:>4}  {}:{}",
                h.stage,
                h.distance,
                f.qualified(),
                self.sites[i].deny,
                self.sites[i].justified,
                f.file,
                f.line
            );
        }
        out
    }

    /// The whole analysis as a JSON document (schema_version 1):
    /// roots with their matches, functions with hotness and call
    /// edges, and every finding.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":1,\"roots\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pattern\":{},\"stage\":{},\"weight\":{},\"matched\":[",
                json_str(&r.pattern),
                json_str(&r.stage),
                r.weight
            );
            for (k, m) in self.root_matches[i].iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{m}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"functions\":[");
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.functions.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
        }
        for (i, f) in self.functions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"fn\":{},\"file\":{},\"line\":{}",
                i,
                json_str(&f.qualified()),
                json_str(&f.file),
                f.line
            );
            if let Some(h) = &self.hot[i] {
                let _ = write!(
                    out,
                    ",\"hot\":true,\"stage\":{},\"distance\":{}",
                    json_str(&h.stage),
                    h.distance
                );
            } else {
                out.push_str(",\"hot\":false");
            }
            out.push_str(",\"calls\":[");
            for (k, c) in adj[i].iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"line\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
                json_str(&v.path),
                v.line,
                json_str(v.rule.name()),
                json_str(v.rule.severity().name()),
                json_str(&v.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Does `pattern` (`Type::name` or bare `name`) match this definition?
fn matches_root(pattern: &str, f: &FnDef) -> bool {
    match pattern.rsplit_once("::") {
        Some((ctx, name)) => {
            f.name == name
                && (f.type_ctx.as_deref() == Some(ctx) || f.trait_ctx.as_deref() == Some(ctx))
        }
        None => f.name == pattern,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Pass 1: extraction.

/// What kind of item header is being accumulated.
#[derive(Debug, Clone, Copy, PartialEq)]
enum HeaderKind {
    Fn,
    Impl,
    Trait,
    Mod,
}

/// An open brace-scoped context.
#[derive(Debug)]
struct Ctx {
    open_depth: usize,
    kind: CtxKind,
}

#[derive(Debug)]
enum CtxKind {
    /// `impl Type` / `impl Trait for Type`.
    Impl {
        type_name: Option<String>,
        trait_name: Option<String>,
    },
    /// `trait Name`.
    Trait { name: String },
    /// A `#[cfg(test)]`/`#[test]`-marked item (or a block inside one):
    /// definitions and calls are not recorded.
    Test,
    /// Anything else that opened a brace (block, struct, match, mod…).
    Other,
}

/// An open function body.
#[derive(Debug)]
struct OpenFn {
    index: usize,
    open_depth: usize,
}

/// Extracts definitions and call sites from one file's split lines,
/// appending to `functions`. Returns the per-line owner map (innermost
/// enclosing function index, measured at end of line).
pub(crate) fn extract_file(
    path: &str,
    lines: &[SplitLine],
    functions: &mut Vec<FnDef>,
) -> Vec<Option<usize>> {
    let mut owners: Vec<Option<usize>> = Vec::with_capacity(lines.len());
    let mut depth: usize = 0;
    let mut ctx_stack: Vec<Ctx> = Vec::new();
    let mut fn_stack: Vec<OpenFn> = Vec::new();
    // Header accumulation (`fn`/`impl`/`trait`/`mod` … up to `{`/`;`).
    let mut header: Option<(HeaderKind, String, usize)> = None;
    let mut pending_test_attr = false;

    for (line_idx, l) in lines.iter().enumerate() {
        let chars: Vec<char> = l.code.chars().collect();
        let mut i = 0;
        // The last completed path segments (for `a::b::c(` qualifiers),
        // reset at anything that breaks a path chain.
        let mut segments: Vec<String> = Vec::new();
        let mut prev_was_dot = false;
        // The innermost function open at any point during this line —
        // captured live so single-line bodies (`fn f() { … }`) keep
        // their owner even though the brace closes before end of line.
        let mut line_owner: Option<usize> = None;
        while i < chars.len() {
            if line_owner.is_none() {
                line_owner = fn_stack.last().map(|f| f.index);
            }
            let c = chars[i];
            if let Some((_, buf, _)) = header.as_mut() {
                if c == '{' {
                    let (kind, text, at_line) = header.take().expect("header is Some");
                    finalize_header(
                        kind,
                        &text,
                        at_line,
                        path,
                        depth,
                        &mut ctx_stack,
                        &mut fn_stack,
                        functions,
                        &mut pending_test_attr,
                    );
                    depth += 1;
                } else if c == ';' {
                    // Bodiless item (trait method decl, `mod x;`).
                    header = None;
                    pending_test_attr = false;
                } else {
                    buf.push(c);
                }
                i += 1;
                continue;
            }
            match c {
                '{' => {
                    ctx_stack.push(Ctx {
                        open_depth: depth,
                        kind: CtxKind::Other,
                    });
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(ctx) = ctx_stack.last() {
                        if ctx.open_depth >= depth {
                            ctx_stack.pop();
                        } else {
                            break;
                        }
                    }
                    while let Some(f) = fn_stack.last() {
                        if f.open_depth >= depth {
                            fn_stack.pop();
                        } else {
                            break;
                        }
                    }
                    segments.clear();
                    i += 1;
                }
                '#' if chars.get(i + 1) == Some(&'[') => {
                    // Attribute: scan to the matching `]`; a `test`
                    // word inside (`#[test]`, `#[cfg(test)]`) marks the
                    // next item as test-only.
                    let mut j = i + 2;
                    let mut level = 1;
                    let mut attr = String::new();
                    while j < chars.len() && level > 0 {
                        match chars[j] {
                            '[' => {
                                level += 1;
                                attr.push(' ');
                            }
                            ']' => {
                                level -= 1;
                                attr.push(' ');
                            }
                            c if c.is_alphanumeric() || c == '_' => attr.push(c),
                            _ => attr.push(' '),
                        }
                        j += 1;
                    }
                    // `#[test]` / `#[cfg(test)]` mark the next item as
                    // test-only; `#[cfg(not(test))]` is real code.
                    if !word_positions(&attr, "test").is_empty()
                        && word_positions(&attr, "not").is_empty()
                    {
                        pending_test_attr = true;
                    }
                    i = j;
                }
                c if c.is_alphabetic() || c == '_' => {
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    let was_dot = prev_was_dot;
                    prev_was_dot = false;
                    match word.as_str() {
                        "fn" | "impl" | "trait" | "mod" if !was_dot => {
                            let kind = match word.as_str() {
                                "fn" => HeaderKind::Fn,
                                "impl" => HeaderKind::Impl,
                                "trait" => HeaderKind::Trait,
                                _ => HeaderKind::Mod,
                            };
                            header = Some((kind, String::new(), line_idx));
                            segments.clear();
                        }
                        "self" | "Self" => {
                            // `Self::f(...)`: keep `Self` as a segment
                            // (resolved to the impl type later) and
                            // consume the `::` so the path chain holds.
                            let mut j = i;
                            while j < chars.len() && chars[j] == ' ' {
                                j += 1;
                            }
                            if chars.get(j) == Some(&':') && chars.get(j + 1) == Some(&':') {
                                segments.push(word);
                                i = j + 2;
                            } else {
                                segments.clear();
                            }
                        }
                        "if" | "else" | "while" | "for" | "loop" | "match" | "return" | "let"
                        | "in" | "as" | "move" | "ref" | "mut" | "pub" | "use" | "where"
                        | "break" | "continue" | "unsafe" | "async" | "await" | "const"
                        | "static" | "struct" | "enum" | "type" | "dyn" | "super" | "crate"
                        | "true" | "false" => {
                            segments.clear();
                        }
                        _ => {
                            // Peek past whitespace for `(`, `::`, `!`.
                            let mut j = i;
                            while j < chars.len() && chars[j] == ' ' {
                                j += 1;
                            }
                            let next = chars.get(j).copied();
                            let next2 = chars.get(j + 1).copied();
                            if next == Some('(') {
                                record_call(
                                    &word, &segments, was_dot, line_idx, &ctx_stack, &fn_stack,
                                    functions,
                                );
                                segments.clear();
                            } else if next == Some(':') && next2 == Some(':') {
                                if chars.get(j + 2) == Some(&'<') {
                                    // Turbofish `name::<T>(…)`: skip the
                                    // balanced angle block, then check
                                    // for the call parenthesis.
                                    let mut k = j + 3;
                                    let mut angle = 1;
                                    while k < chars.len() && angle > 0 {
                                        match chars[k] {
                                            '<' => angle += 1,
                                            '>' => angle -= 1,
                                            _ => {}
                                        }
                                        k += 1;
                                    }
                                    if chars.get(k) == Some(&'(') {
                                        record_call(
                                            &word, &segments, was_dot, line_idx, &ctx_stack,
                                            &fn_stack, functions,
                                        );
                                    }
                                    segments.clear();
                                    i = k;
                                } else {
                                    segments.push(word);
                                    i = j + 2;
                                }
                            } else {
                                segments.clear();
                            }
                        }
                    }
                }
                '.' => {
                    prev_was_dot = true;
                    segments.clear();
                    i += 1;
                }
                ';' => {
                    // A `#[cfg(test)] use …;`-style bodiless item
                    // consumes its attribute.
                    pending_test_attr = false;
                    segments.clear();
                    i += 1;
                }
                ' ' | '\t' => {
                    i += 1;
                }
                _ => {
                    prev_was_dot = false;
                    segments.clear();
                    i += 1;
                }
            }
        }
        // Multi-line headers: carry the buffer across the newline.
        if let Some((_, buf, _)) = header.as_mut() {
            buf.push(' ');
        }
        if line_owner.is_none() {
            line_owner = fn_stack.last().map(|f| f.index);
        }
        owners.push(line_owner);
    }
    owners
}

/// Pushes the context (or function) a completed header opens.
#[allow(clippy::too_many_arguments)]
fn finalize_header(
    kind: HeaderKind,
    text: &str,
    at_line: usize,
    path: &str,
    depth: usize,
    ctx_stack: &mut Vec<Ctx>,
    fn_stack: &mut Vec<OpenFn>,
    functions: &mut Vec<FnDef>,
    pending_test_attr: &mut bool,
) {
    let test = std::mem::take(pending_test_attr)
        || ctx_stack.iter().any(|c| matches!(c.kind, CtxKind::Test));
    if test {
        ctx_stack.push(Ctx {
            open_depth: depth,
            kind: CtxKind::Test,
        });
        return;
    }
    match kind {
        HeaderKind::Fn => {
            let Some(name) = leading_ident(text) else {
                // `fn`-pointer type or closure artifact: anonymous
                // block, nothing to record.
                ctx_stack.push(Ctx {
                    open_depth: depth,
                    kind: CtxKind::Other,
                });
                return;
            };
            let (type_ctx, trait_ctx) = enclosing_context(ctx_stack);
            functions.push(FnDef {
                name,
                type_ctx,
                trait_ctx,
                file: path.to_string(),
                line: at_line + 1,
                calls: Vec::new(),
            });
            fn_stack.push(OpenFn {
                index: functions.len() - 1,
                open_depth: depth,
            });
            ctx_stack.push(Ctx {
                open_depth: depth,
                kind: CtxKind::Other,
            });
        }
        HeaderKind::Impl => {
            let (type_name, trait_name) = parse_impl_header(text);
            ctx_stack.push(Ctx {
                open_depth: depth,
                kind: CtxKind::Impl {
                    type_name,
                    trait_name,
                },
            });
        }
        HeaderKind::Trait => {
            let name = leading_ident(text).unwrap_or_default();
            ctx_stack.push(Ctx {
                open_depth: depth,
                kind: CtxKind::Trait { name },
            });
        }
        HeaderKind::Mod => {
            ctx_stack.push(Ctx {
                open_depth: depth,
                kind: CtxKind::Other,
            });
        }
    }
}

/// The innermost impl/trait context on the stack.
fn enclosing_context(ctx_stack: &[Ctx]) -> (Option<String>, Option<String>) {
    for ctx in ctx_stack.iter().rev() {
        match &ctx.kind {
            CtxKind::Impl {
                type_name,
                trait_name,
            } => return (type_name.clone(), trait_name.clone()),
            CtxKind::Trait { name } => return (None, Some(name.clone())),
            _ => {}
        }
    }
    (None, None)
}

/// Records one call site on the innermost open function.
fn record_call(
    name: &str,
    segments: &[String],
    was_method: bool,
    line_idx: usize,
    ctx_stack: &[Ctx],
    fn_stack: &[OpenFn],
    functions: &mut [FnDef],
) {
    let Some(open) = fn_stack.last() else {
        return;
    };
    let qualifier = if was_method {
        None
    } else {
        segments.last().map(|q| {
            if q == "Self" || q == "self" {
                enclosing_context(ctx_stack).0.unwrap_or_else(|| q.clone())
            } else {
                q.clone()
            }
        })
    };
    functions[open.index].calls.push(CallSite {
        name: name.to_string(),
        qualifier,
        method: was_method,
        line: line_idx + 1,
    });
}

/// First identifier of a header body (the `fn`/`trait` name), skipping
/// nothing else.
fn leading_ident(text: &str) -> Option<String> {
    let trimmed = text.trim_start();
    let mut out = String::new();
    for c in trimmed.chars() {
        if c.is_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            break;
        }
    }
    (!out.is_empty() && !out.chars().next().is_some_and(|c| c.is_ascii_digit())).then_some(out)
}

/// Parses an `impl` header (text between `impl` and `{`) into
/// `(type base name, trait base name)`.
fn parse_impl_header(text: &str) -> (Option<String>, Option<String>) {
    // Strip leading generic parameters `<...>` (balanced).
    let trimmed = text.trim_start();
    let rest = if let Some(stripped) = trimmed.strip_prefix('<') {
        let mut level = 1;
        let mut end = 0;
        for (k, c) in stripped.char_indices() {
            match c {
                '<' => level += 1,
                '>' => level -= 1,
                _ => {}
            }
            if level == 0 {
                end = k + 1;
                break;
            }
        }
        &stripped[end.min(stripped.len())..]
    } else {
        trimmed
    };
    // Split `Trait for Type` at a top-level ` for `.
    let mut level = 0i32;
    let bytes = rest.as_bytes();
    let mut split_at = None;
    let mut k = 0;
    while k + 5 <= bytes.len() {
        match bytes[k] {
            b'<' | b'(' | b'[' => level += 1,
            b'>' | b')' | b']' => level -= 1,
            b'f' if level == 0
                && rest[k..].starts_with("for")
                && (k == 0 || !bytes[k - 1].is_ascii_alphanumeric() && bytes[k - 1] != b'_')
                && bytes
                    .get(k + 3)
                    .is_some_and(|&b| !b.is_ascii_alphanumeric() && b != b'_') =>
            {
                split_at = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    match split_at {
        Some(k) => (base_name(&rest[k + 3..]), base_name(&rest[..k])),
        None => (base_name(rest), None),
    }
}

/// The base identifier of a (possibly generic, possibly pathed) type:
/// `crate::foo::Bar<T>` → `Bar`; `&mut dyn Frob` → `Frob`.
fn base_name(s: &str) -> Option<String> {
    let mut last = None;
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() && !matches!(cur.as_str(), "dyn" | "mut" | "where" | "const") {
                last = Some(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
            if c == '<' {
                break;
            }
        }
    }
    if !cur.is_empty() && !matches!(cur.as_str(), "dyn" | "mut" | "where" | "const") {
        last = Some(cur);
    }
    last
}

// ---------------------------------------------------------------------------
// Pass 3: reachability-scoped rules.

struct RuleCtx<'a> {
    path: &'a str,
    lines: &'a [SplitLine],
    idx: usize,
    code: &'a str,
    owner: &'a FnDef,
    info: Option<&'a HotInfo>,
}

/// Panic-capable macros (matched as `name!`; word-bounding keeps
/// `debug_assert!` out).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Is there a `.name(`-style method call on this line?
fn method_call(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    word_positions(code, name)
        .into_iter()
        .any(|p| p > 0 && bytes[p - 1] == b'.' && bytes.get(p + name.len()) == Some(&b'('))
}

/// Is there a `.name(` or `.name::<…>(` method call on this line?
fn method_call_or_turbofish(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    word_positions(code, name).into_iter().any(|p| {
        p > 0
            && bytes[p - 1] == b'.'
            && matches!(bytes.get(p + name.len()), Some(&b'(') | Some(&b':'))
    })
}

/// Is there a `name!(`/`name![` macro invocation on this line?
fn macro_call(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    word_positions(code, name)
        .into_iter()
        .any(|p| bytes.get(p + name.len()) == Some(&b'!'))
}

/// A slice-indexing site: `ident[`, `)[`, or `][`, excluding the
/// full-range slice `[..]` (which cannot panic).
fn has_indexing(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (p, &b) in bytes.iter().enumerate() {
        if b != b'[' || p == 0 {
            continue;
        }
        let prev = bytes[p - 1];
        let indexy = prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexy {
            continue;
        }
        // Exempt the infallible full-range slice `[..]`.
        let rest = &code[p + 1..];
        if rest.trim_start().starts_with("..]") {
            continue;
        }
        return true;
    }
    false
}

fn hot_suffix(owner: &FnDef, info: &HotInfo) -> String {
    format!(
        "in hot function `{}` (stage {}, distance {} from a root)",
        owner.qualified(),
        info.stage,
        info.distance
    )
}

fn scan_panic_rule(
    ctx: &RuleCtx<'_>,
    info: &HotInfo,
    out: &mut Vec<Violation>,
    sites: &mut SiteCounts,
) {
    let mut what: Option<&str> = None;
    if method_call(ctx.code, "unwrap") {
        what = Some("`unwrap()`");
    } else if method_call(ctx.code, "expect") {
        what = Some("`expect()`");
    } else if let Some(m) = PANIC_MACROS.iter().find(|m| macro_call(ctx.code, m)) {
        what = match *m {
            "assert" | "assert_eq" | "assert_ne" => Some("`assert!`-family macro"),
            _ => Some("panic-family macro"),
        };
    } else if has_indexing(ctx.code) {
        what = Some("slice indexing");
    }
    let Some(what) = what else { return };
    if annotated(ctx.lines, ctx.idx, "panic-ok:") {
        sites.justified += 1;
        return;
    }
    sites.deny += 1;
    out.push(Violation {
        path: ctx.path.to_string(),
        line: ctx.idx + 1,
        rule: Rule::HotPanic,
        message: format!(
            "{what} {}; hot code must be panic-free or carry a \
             `// panic-ok: <reason>` justification",
            hot_suffix(ctx.owner, info)
        ),
    });
}

fn scan_alloc_rule(
    ctx: &RuleCtx<'_>,
    info: &HotInfo,
    out: &mut Vec<Violation>,
    sites: &mut SiteCounts,
) {
    let code = ctx.code;
    let found = code.contains("Vec::new(")
        || code.contains("Vec::with_capacity(")
        || word_positions(code, "with_capacity")
            .iter()
            .any(|&p| code.as_bytes().get(p + "with_capacity".len()) == Some(&b'('))
        || macro_call(code, "vec")
        || code.contains("Box::new(")
        || macro_call(code, "format")
        || code.contains("String::new(")
        || method_call(code, "to_vec")
        || method_call(code, "to_string")
        || method_call(code, "to_owned")
        || method_call(code, "clone")
        || method_call_or_turbofish(code, "collect")
        || method_call(code, "push");
    if !found {
        return;
    }
    if annotated(ctx.lines, ctx.idx, "alloc-ok:") {
        sites.justified += 1;
        return;
    }
    sites.warn += 1;
    out.push(Violation {
        path: ctx.path.to_string(),
        line: ctx.idx + 1,
        rule: Rule::HotAlloc,
        message: format!(
            "heap allocation {}; prefer reuse/preallocation or justify \
             with `// alloc-ok: <reason>`",
            hot_suffix(ctx.owner, info)
        ),
    });
}

/// Path-qualified blocking constructs.
const BLOCKING_PATHS: &[&str] = &[
    "std::fs::",
    "File::open",
    "File::create",
    "OpenOptions::new",
    "std::process::Command",
    "Command::new",
    "io::stdin",
    "io::stdout",
    "io::stderr",
    "thread::sleep",
];

/// Blocking macros.
const BLOCKING_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// Blocking method calls.
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "read_line",
];

fn scan_blocking_rule(
    ctx: &RuleCtx<'_>,
    in_exec: bool,
    out: &mut Vec<Violation>,
    sites: &mut SiteCounts,
) {
    let code = ctx.code;
    let found = BLOCKING_PATHS.iter().any(|p| code.contains(p))
        || BLOCKING_MACROS.iter().any(|m| macro_call(code, m))
        || BLOCKING_METHODS.iter().any(|m| method_call(code, m));
    if !found {
        return;
    }
    if annotated(ctx.lines, ctx.idx, "blocking-ok:") {
        sites.justified += 1;
        return;
    }
    sites.deny += 1;
    let place = match ctx.info {
        Some(info) => hot_suffix(ctx.owner, info),
        None if in_exec => format!(
            "in executor function `{}` (everything in crates/exec/src \
             must be non-blocking)",
            ctx.owner.qualified()
        ),
        None => format!("in function `{}`", ctx.owner.qualified()),
    };
    out.push(Violation {
        path: ctx.path.to_string(),
        line: ctx.idx + 1,
        rule: Rule::HotBlocking,
        message: format!(
            "blocking call {place}; hot/executor code must not block or \
             must justify with `// blocking-ok: <reason>`"
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_file(src: &str) -> Vec<(String, String)> {
        vec![("crates/x/src/a.rs".to_string(), src.to_string())]
    }

    fn analyze(src: &str, roots: Vec<RootSpec>) -> GraphAnalysis {
        analyze_sources(&one_file(src), roots)
    }

    #[test]
    fn extracts_free_and_impl_functions_with_context() {
        let src = "\
pub fn free_one() {}
struct Foo;
impl Foo {
    pub fn method_a(&self) {}
}
impl Frob for Foo {
    fn frob(&self) {}
}
trait Frob {
    fn frob(&self);
    fn defaulted(&self) -> u32 { 7 }
}
";
        let a = analyze(src, vec![]);
        let names: Vec<String> = a.functions.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            names,
            vec!["free_one", "Foo::method_a", "Foo::frob", "Frob::defaulted"]
        );
        let frob = &a.functions[2];
        assert_eq!(frob.trait_ctx.as_deref(), Some("Frob"));
        assert_eq!(frob.line, 7);
    }

    #[test]
    fn multi_line_signatures_and_generics_parse() {
        let src = "\
impl<O: Oracle + ?Sized> InstrumentedOracle<O> {
    pub fn query_batch(
        &mut self,
        inputs: &[u64],
    ) -> Vec<u64> {
        helper(inputs)
    }
}
fn helper(xs: &[u64]) -> Vec<u64> { xs.to_vec() }
";
        let a = analyze(src, vec![]);
        assert_eq!(
            a.functions[0].qualified(),
            "InstrumentedOracle::query_batch"
        );
        assert_eq!(a.functions[0].calls.len(), 1);
        assert_eq!(a.functions[0].calls[0].name, "helper");
        // The unqualified call resolves to the free `helper`.
        assert_eq!(a.edges, vec![(0, 1)]);
    }

    #[test]
    fn qualified_calls_resolve_by_type_and_miss_externals() {
        let src = "\
struct A;
struct B;
impl A { fn make() {} }
impl B { fn make() {} }
fn caller() {
    A::make();
    Vec::new();
}
";
        let a = analyze(src, vec![]);
        let caller = a.find("caller").unwrap();
        let a_make = a.find("A::make").unwrap();
        // Exactly one edge: `A::make` resolves to A's impl only, and
        // `Vec::new` (no workspace def) resolves to nothing.
        assert_eq!(a.edges, vec![(caller, a_make)]);
    }

    #[test]
    fn ambiguous_method_calls_widen_to_every_candidate() {
        let src = "\
struct A;
struct B;
impl A { fn frob(&self) {} }
impl B { fn frob(&self) { danger().unwrap(); } }
fn danger() -> Result<(), ()> { Ok(()) }
fn driver(x: &A) {
    x.frob();
}
";
        let roots = vec![RootSpec::new("driver", "custom", 1)];
        let a = analyze(src, roots);
        // `x.frob()` has an unknown receiver: BOTH frobs get the edge,
        // so the unwrap inside B::frob is hot — over-approximation
        // keeps the edge rather than missing it.
        let b_frob = a.find("B::frob").unwrap();
        assert!(a.hot[b_frob].is_some(), "widening must keep B::frob hot");
        assert!(
            a.violations.iter().any(|v| v.rule == Rule::HotPanic),
            "unwrap in a widened callee must be flagged: {:?}",
            a.violations
        );
    }

    #[test]
    fn self_qualifier_resolves_to_the_impl_type() {
        let src = "\
struct S;
impl S {
    fn entry(&self) { Self::leaf(); }
    fn leaf() {}
}
";
        let a = analyze(src, vec![RootSpec::new("S::entry", "custom", 1)]);
        let leaf = a.find("S::leaf").unwrap();
        assert!(a.hot[leaf].is_some(), "Self::leaf must be reached");
    }

    #[test]
    fn turbofish_calls_still_form_edges() {
        let src = "\
struct P;
impl P { fn parse(s: &str) -> u32 { 0 } }
fn caller() {
    P::parse::<>(\"x\");
}
";
        let a = analyze(src, vec![]);
        assert_eq!(a.edges.len(), 1);
    }

    #[test]
    fn reachability_is_transitive_and_scoped() {
        let src = "\
fn root_fn() { middle(); }
fn middle() { leaf(); }
fn leaf() { xs.unwrap(); }
fn cold() { ys.unwrap(); }
";
        let a = analyze(src, vec![RootSpec::new("root_fn", "oracle", 5)]);
        assert_eq!(a.hot_count(), 3);
        let leaf = a.find("leaf").unwrap();
        assert_eq!(a.hot[leaf].as_ref().unwrap().distance, 2);
        assert!(a.hot[a.find("cold").unwrap()].is_none());
        // Only the hot unwrap is flagged.
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn test_modules_contribute_nothing() {
        let src = "\
fn hot_fn() { helper(); }
fn helper() {}
#[cfg(test)]
mod tests {
    fn helper() { panic!(\"in tests\"); }
    #[test]
    fn t() { hot_fn(); helper(); }
}
";
        let a = analyze(src, vec![RootSpec::new("hot_fn", "custom", 1)]);
        // The test-module helper is not extracted at all.
        assert_eq!(a.functions.len(), 2);
        assert!(a.violations.is_empty());
    }

    #[test]
    fn panic_rule_catches_each_construct_and_markers_silence() {
        let cases = [
            "fn root_fn() { x.unwrap(); }",
            "fn root_fn() { x.expect(\"m\"); }",
            "fn root_fn() { panic!(\"boom\"); }",
            "fn root_fn() { unreachable!(); }",
            "fn root_fn() { assert!(x > 0); }",
            "fn root_fn() { assert_eq!(a, b); }",
            "fn root_fn() { let y = xs[i]; }",
        ];
        for src in cases {
            let a = analyze(src, vec![RootSpec::new("root_fn", "custom", 1)]);
            assert_eq!(a.violations.len(), 1, "{src}");
            assert_eq!(a.violations[0].rule, Rule::HotPanic, "{src}");
        }
        let ok =
            "fn root_fn() {\n    // panic-ok: index bounded by loop above.\n    let y = xs[i];\n}";
        let a = analyze(ok, vec![RootSpec::new("root_fn", "custom", 1)]);
        assert!(a.violations.is_empty());
        let root = a.find("root_fn").unwrap();
        assert_eq!(a.sites[root].justified, 1);
    }

    #[test]
    fn debug_assert_and_full_range_slices_are_exempt() {
        let src = "fn root_fn() { debug_assert!(x); let s = &xs[..]; }";
        let a = analyze(src, vec![RootSpec::new("root_fn", "custom", 1)]);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn alloc_rule_warns_and_does_not_deny() {
        let src = "fn root_fn() { let v = Vec::new(); let w = x.clone(); }";
        let a = analyze(src, vec![RootSpec::new("root_fn", "custom", 1)]);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].rule, Rule::HotAlloc);
        assert_eq!(a.violations[0].rule.severity(), Severity::Warn);
        assert_eq!(a.deny_violations().count(), 0);
        assert_eq!(a.warn_violations().count(), 1);
    }

    #[test]
    fn blocking_rule_fires_in_hot_code_and_everywhere_in_exec() {
        let hot = "fn root_fn() { let g = m.lock(); }";
        let a = analyze(hot, vec![RootSpec::new("root_fn", "custom", 1)]);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].rule, Rule::HotBlocking);

        // In crates/exec/src even a cold function may not block.
        let sources = vec![(
            "crates/exec/src/z.rs".to_string(),
            "fn cold_exec() { println!(\"dbg\"); }".to_string(),
        )];
        let a = analyze_sources(&sources, vec![]);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].rule, Rule::HotBlocking);

        // Outside exec, a cold blocking call is fine.
        let cold = "fn cold_fn() { let g = m.lock(); }";
        let a = analyze(cold, vec![RootSpec::new("absent", "custom", 1)]);
        assert!(a.violations.is_empty());
    }

    #[test]
    fn root_patterns_match_type_or_trait_context() {
        let src = "\
trait Oracle {
    fn query(&mut self) -> bool { self.raw() }
    fn raw(&mut self) -> bool;
}
struct C;
impl Oracle for C {
    fn raw(&mut self) -> bool { data[0] }
}
";
        let a = analyze(src, vec![RootSpec::new("Oracle::query", "oracle", 5)]);
        // The trait-default `query` matches by trait context, and its
        // `self.raw()` call widens to C's impl.
        let raw = a.find("C::raw").unwrap();
        assert!(a.hot[raw].is_some());
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].rule, Rule::HotPanic);
    }

    #[test]
    fn hottest_table_ranks_by_stage_weight_not_name() {
        let src = "\
fn aaa_cool() { q[0]; }
fn zzz_hot() { q[0]; }
";
        let roots = vec![
            RootSpec::new("aaa_cool", "exec", 1),
            RootSpec::new("zzz_hot", "oracle", 5),
        ];
        let a = analyze(src, roots);
        let ranked = a.hottest(10);
        assert_eq!(a.functions[ranked[0]].name, "zzz_hot");
        let table = a.render_hottest(10);
        assert!(table.contains("oracle"), "{table}");
        let zpos = table.find("zzz_hot").unwrap();
        let apos = table.find("aaa_cool").unwrap();
        assert!(zpos < apos, "oracle-stage fn must rank first:\n{table}");
    }

    #[test]
    fn path_between_returns_the_chain() {
        let src = "\
fn a_fn() { b_fn(); }
fn b_fn() { c_fn(); }
fn c_fn() {}
";
        let a = analyze(src, vec![]);
        let chain = a.path_between("a_fn", "c_fn").expect("chain exists");
        assert_eq!(chain, vec!["a_fn", "b_fn", "c_fn"]);
        assert!(a.path_between("c_fn", "a_fn").is_none());
    }

    #[test]
    fn json_output_is_shaped_and_escaped() {
        let src = "fn root_fn() { x.unwrap(); }";
        let a = analyze(src, vec![RootSpec::new("root_fn", "oracle", 5)]);
        let json = a.to_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"pattern\":\"root_fn\""));
        assert!(json.contains("\"hot\":true"));
        assert!(json.contains("\"rule\":\"hot-panic\""));
        assert!(json.contains("\"severity\":\"deny\""));
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn parse_root_spec_forms() {
        let r = parse_root_spec("Oracle::query", 0, 2);
        assert_eq!(r.pattern, "Oracle::query");
        assert_eq!(r.stage, "custom");
        assert_eq!(r.weight, 2);
        let r = parse_root_spec("step@fbdt:3", 1, 2);
        assert_eq!(
            (r.pattern.as_str(), r.stage.as_str(), r.weight),
            ("step", "fbdt", 3)
        );
        let r = parse_root_spec("sim@sim", 1, 2);
        assert_eq!((r.stage.as_str(), r.weight), ("sim", 1));
    }

    #[test]
    fn impl_header_forms_parse() {
        assert_eq!(
            parse_impl_header(" Oracle for InstrumentedOracle<O> "),
            (Some("InstrumentedOracle".into()), Some("Oracle".into()))
        );
        assert_eq!(
            parse_impl_header("<T: Clone> Wrapper<T> "),
            (Some("Wrapper".into()), None)
        );
        assert_eq!(
            parse_impl_header("<O: Oracle + ?Sized> Oracle for &mut O "),
            (Some("O".into()), Some("Oracle".into()))
        );
        assert_eq!(
            parse_impl_header(" std::fmt::Display for Strategy "),
            (Some("Strategy".into()), Some("Display".into()))
        );
    }
}
