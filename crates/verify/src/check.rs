//! Differential verification of optimization passes.

use std::fmt;
use std::str::FromStr;

use cirlearn_aig::Aig;
use cirlearn_logic::{Assignment, SimVector};
use cirlearn_sat::{check_equivalence, Equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{LintViolation, Linter, Witness};

/// How hard [`verify_pass`] works to validate an optimization step.
///
/// The levels are cumulative: `sim` also lints, `sat` also simulates
/// (cheap simulation refutes most broken passes before the solver is
/// ever invoked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum VerifyLevel {
    /// No checking (the historical behavior).
    #[default]
    Off,
    /// Structural linting of the result only.
    Lint,
    /// Lint plus a 64-bit parallel random-simulation differential check.
    Sim,
    /// Lint, simulation, and a full SAT equivalence check (CEC).
    Sat,
}

impl VerifyLevel {
    /// All levels in increasing strength, for help texts and tests.
    pub const ALL: [VerifyLevel; 4] = [
        VerifyLevel::Off,
        VerifyLevel::Lint,
        VerifyLevel::Sim,
        VerifyLevel::Sat,
    ];
}

impl fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl VerifyLevel {
    /// The canonical lowercase name (`off`, `lint`, `sim`, `sat`).
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyLevel::Off => "off",
            VerifyLevel::Lint => "lint",
            VerifyLevel::Sim => "sim",
            VerifyLevel::Sat => "sat",
        }
    }
}

/// Error returned when parsing an unknown [`VerifyLevel`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerifyLevelError(String);

impl fmt::Display for ParseVerifyLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown verify level `{}` (expected off, lint, sim or sat)",
            self.0
        )
    }
}

impl std::error::Error for ParseVerifyLevelError {}

impl FromStr for VerifyLevel {
    type Err = ParseVerifyLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyLevel::Off),
            "lint" => Ok(VerifyLevel::Lint),
            "sim" => Ok(VerifyLevel::Sim),
            "sat" => Ok(VerifyLevel::Sat),
            other => Err(ParseVerifyLevelError(other.to_string())),
        }
    }
}

/// Configuration of the checked-pass harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyConfig {
    /// How much verification to run after each pass.
    pub level: VerifyLevel,
    /// Number of random patterns for the simulation differential check.
    pub sim_patterns: usize,
    /// Seed for the simulation patterns (deterministic by default).
    pub seed: u64,
    /// Whether to minimize witnesses by greedy bit-flipping before
    /// reporting them.
    pub minimize: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            level: VerifyLevel::Off,
            sim_patterns: 256,
            seed: 0xC1AC_1EA7,
            minimize: true,
        }
    }
}

impl VerifyConfig {
    /// A configuration at the given level with default knobs.
    pub fn at_level(level: VerifyLevel) -> Self {
        VerifyConfig {
            level,
            ..VerifyConfig::default()
        }
    }
}

/// What [`verify_pass`] found wrong with an optimization step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The pass changed the circuit interface, which no optimization
    /// may do.
    Interface {
        /// `"inputs"` or `"outputs"`.
        what: &'static str,
        /// Count before the pass.
        before: usize,
        /// Count after the pass.
        after: usize,
    },
    /// The result circuit fails structural linting.
    Lint(Vec<LintViolation>),
    /// The result circuit computes a different function, demonstrated
    /// by a concrete (minimized) witness.
    Functional(Witness),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Interface {
                what,
                before,
                after,
            } => {
                write!(f, "pass changed {what}: {before} -> {after}")
            }
            Violation::Lint(violations) => {
                write!(f, "{} lint violation(s)", violations.len())?;
                if let Some(first) = violations.first() {
                    write!(f, ", first: {first}")?;
                }
                Ok(())
            }
            Violation::Functional(witness) => write!(f, "functional difference: {witness}"),
        }
    }
}

/// Verifies that an optimization pass turned `before` into an
/// equivalent, structurally sound `after`, at the strength selected by
/// `config.level`.
///
/// Dangling AND nodes in `after` are tolerated (passes legitimately
/// strand nodes mid-pipeline; reachable gate count is the metric). The
/// caller is expected to hand in a structurally sound `before` — in the
/// harness it is always the previously verified circuit.
///
/// # Panics
///
/// May panic (inside simulation or CNF encoding) if `before` itself is
/// structurally corrupt.
pub fn verify_pass(before: &Aig, after: &Aig, config: &VerifyConfig) -> Result<(), Violation> {
    if config.level == VerifyLevel::Off {
        return Ok(());
    }
    if before.num_inputs() != after.num_inputs() {
        return Err(Violation::Interface {
            what: "inputs",
            before: before.num_inputs(),
            after: after.num_inputs(),
        });
    }
    if before.num_outputs() != after.num_outputs() {
        return Err(Violation::Interface {
            what: "outputs",
            before: before.num_outputs(),
            after: after.num_outputs(),
        });
    }
    let lints = Linter::new().allow_dangling(true).lint(after);
    if !lints.is_empty() {
        return Err(Violation::Lint(lints));
    }
    if config.level >= VerifyLevel::Sim {
        if let Some(witness) = simulate_difference(before, after, config) {
            return Err(Violation::Functional(finish(
                witness, before, after, config,
            )));
        }
    }
    if config.level >= VerifyLevel::Sat {
        if let Equivalence::Counterexample(cex) = check_equivalence(before, after) {
            return Err(Violation::Functional(finish(
                Witness::from(cex),
                before,
                after,
                config,
            )));
        }
    }
    Ok(())
}

/// Runs the bit-parallel random-simulation differential check,
/// returning a raw witness on the first disagreement.
fn simulate_difference(before: &Aig, after: &Aig, config: &VerifyConfig) -> Option<Witness> {
    let n = before.num_inputs();
    let patterns = config.sim_patterns.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let inputs: Vec<SimVector> = (0..n)
        .map(|_| SimVector::random(patterns, &mut rng))
        .collect();
    let left = before.simulate(&inputs);
    let right = after.simulate(&inputs);
    for (output, (vl, vr)) in left.iter().zip(&right).enumerate() {
        let differing = vl
            .words()
            .iter()
            .zip(vr.words())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        if let Some((word, (a, b))) = differing {
            let k = word * 64 + (a ^ b).trailing_zeros() as usize;
            let assignment = Assignment::from_bits((0..n).map(|i| inputs[i].bit(k)));
            return Some(Witness {
                inputs: assignment,
                output,
            });
        }
    }
    None
}

fn finish(witness: Witness, before: &Aig, after: &Aig, config: &VerifyConfig) -> Witness {
    if config.minimize {
        witness.minimize(before, after)
    } else {
        witness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_aig::Edge;

    fn adder() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let s = g.xor(a, b);
        let sum = g.xor(s, c);
        let ab = g.and(a, b);
        let sc = g.and(s, c);
        let carry = g.or(ab, sc);
        g.add_output(sum, "sum");
        g.add_output(carry, "carry");
        g
    }

    #[test]
    fn level_parsing_roundtrips() {
        for level in VerifyLevel::ALL {
            assert_eq!(level.as_str().parse::<VerifyLevel>(), Ok(level));
            assert_eq!(level.to_string(), level.as_str());
        }
        assert!("cec".parse::<VerifyLevel>().is_err());
        assert!(VerifyLevel::Lint < VerifyLevel::Sim);
        assert!(VerifyLevel::Sim < VerifyLevel::Sat);
    }

    #[test]
    fn identical_circuits_pass_all_levels() {
        let g = adder();
        for level in VerifyLevel::ALL {
            assert_eq!(verify_pass(&g, &g, &VerifyConfig::at_level(level)), Ok(()));
        }
    }

    #[test]
    fn off_level_accepts_anything() {
        let g = adder();
        let mut broken = adder();
        broken.set_output_unchecked(0, Edge::TRUE);
        assert_eq!(
            verify_pass(&g, &broken, &VerifyConfig::at_level(VerifyLevel::Off)),
            Ok(())
        );
    }

    #[test]
    fn interface_change_is_reported_first() {
        let g = adder();
        let mut fewer = Aig::new();
        let _ = fewer.add_inputs("x", 3);
        fewer.add_output(Edge::FALSE, "y");
        match verify_pass(&g, &fewer, &VerifyConfig::at_level(VerifyLevel::Lint)) {
            Err(Violation::Interface {
                what: "outputs",
                before: 2,
                after: 1,
            }) => {}
            other => panic!("expected interface violation, got {other:?}"),
        }
    }

    #[test]
    fn flipped_output_caught_by_sim_with_genuine_witness() {
        let g = adder();
        let mut broken = adder();
        let edge = broken.output_edge(1);
        broken.set_output_unchecked(1, !edge);
        let cfg = VerifyConfig::at_level(VerifyLevel::Sim);
        match verify_pass(&g, &broken, &cfg) {
            Err(Violation::Functional(w)) => {
                assert_eq!(w.output, 1);
                assert!(w.distinguishes(&g, &broken));
            }
            other => panic!("expected functional violation, got {other:?}"),
        }
    }

    #[test]
    fn rare_difference_caught_by_sat() {
        // before = AND of 16 inputs, after = constant 0: they differ on
        // exactly one of 65536 patterns, which 8 random patterns will
        // almost surely miss — the SAT stage must still find it.
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 16);
        let y = g.and_many(&xs);
        g.add_output(y, "y");
        let mut broken = Aig::new();
        let _ = broken.add_inputs("x", 16);
        broken.add_output(Edge::FALSE, "y");
        let cfg = VerifyConfig {
            sim_patterns: 8,
            ..VerifyConfig::at_level(VerifyLevel::Sat)
        };
        match verify_pass(&g, &broken, &cfg) {
            Err(Violation::Functional(w)) => {
                assert!(w.distinguishes(&g, &broken));
                // The only difference is the all-ones input.
                assert_eq!(w.inputs.count_ones(), 16);
            }
            other => panic!("expected functional violation, got {other:?}"),
        }
    }

    #[test]
    fn lint_level_catches_structural_damage_but_not_semantics() {
        let g = adder();
        // Structural damage: unordered fanins (function preserved).
        let mut unordered = adder();
        let node = unordered.ands().next().expect("has ANDs").0;
        let [a, b] = unordered.fanins(node);
        unordered.set_fanin_unchecked(node, 0, b);
        unordered.set_fanin_unchecked(node, 1, a);
        assert!(matches!(
            verify_pass(&g, &unordered, &VerifyConfig::at_level(VerifyLevel::Lint)),
            Err(Violation::Lint(_))
        ));
        // Semantic damage with clean structure: lint level misses it,
        // sim level catches it.
        let mut flipped = adder();
        let edge = flipped.output_edge(0);
        flipped.set_output_unchecked(0, !edge);
        assert_eq!(
            verify_pass(&g, &flipped, &VerifyConfig::at_level(VerifyLevel::Lint)),
            Ok(())
        );
        assert!(matches!(
            verify_pass(&g, &flipped, &VerifyConfig::at_level(VerifyLevel::Sim)),
            Err(Violation::Functional(_))
        ));
    }

    #[test]
    fn dangling_nodes_are_tolerated_by_the_harness() {
        let g = adder();
        let mut with_dangling = adder();
        let a = with_dangling.input_edge(0);
        let c = with_dangling.input_edge(2);
        let _ = with_dangling.and(!a, !c);
        assert_eq!(
            verify_pass(
                &g,
                &with_dangling,
                &VerifyConfig::at_level(VerifyLevel::Sat)
            ),
            Ok(())
        );
    }

    #[test]
    fn witnesses_are_minimized_when_asked() {
        // before = OR of 8 inputs, after = constant 1: every nonzero
        // assignment agrees, only all-zeros differs... actually OR=0
        // only at all-zeros, so the witness must be all-zeros either
        // way. Use AND instead: before = x0, after = constant 0; any
        // input with x0=1 differs, minimal witness has exactly one bit.
        let mut g = Aig::new();
        let xs = g.add_inputs("x", 8);
        g.add_output(xs[0], "y");
        let mut broken = Aig::new();
        let _ = broken.add_inputs("x", 8);
        broken.add_output(Edge::FALSE, "y");
        let cfg = VerifyConfig::at_level(VerifyLevel::Sim);
        match verify_pass(&g, &broken, &cfg) {
            Err(Violation::Functional(w)) => {
                assert_eq!(w.inputs.count_ones(), 1);
            }
            other => panic!("expected functional violation, got {other:?}"),
        }
        let raw = VerifyConfig {
            minimize: false,
            ..cfg
        };
        match verify_pass(&g, &broken, &raw) {
            Err(Violation::Functional(w)) => {
                assert!(w.distinguishes(&g, &broken));
            }
            other => panic!("expected functional violation, got {other:?}"),
        }
    }

    #[test]
    fn violations_render_for_humans() {
        let v = Violation::Interface {
            what: "inputs",
            before: 4,
            after: 3,
        };
        assert_eq!(v.to_string(), "pass changed inputs: 4 -> 3");
        let w = Violation::Functional(Witness {
            inputs: Assignment::from_bits([true, false]),
            output: 2,
        });
        assert!(w.to_string().contains("output 2"));
    }
}
