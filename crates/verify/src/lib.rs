//! Circuit verification: structural linting and checked optimization.
//!
//! The learning pipeline is only as sound as its weakest rewrite — a
//! single unsound pass silently destroys the accuracy the paper's flow
//! is built to deliver. This crate makes soundness checkable *inside*
//! the pipeline instead of only in out-of-band tests:
//!
//! * [`Linter`] / [`lint`] — a pure static pass over an
//!   [`Aig`](cirlearn_aig::Aig) that checks every structural invariant
//!   (topological order, canonical structural hashing, no
//!   constant-reducible gates, valid references) and returns typed
//!   [`LintViolation`]s with node ids instead of panicking,
//! * [`verify_pass`] — a differential check between a circuit and its
//!   optimized successor at a configurable [`VerifyLevel`]: structural
//!   lint only, 64-bit parallel random simulation, or a full SAT
//!   equivalence check,
//! * [`Witness`] — a concrete counterexample (input assignment plus
//!   differing output index), minimized by greedy bit-flipping and
//!   re-checkable by simulation via [`Witness::distinguishes`].
//!
//! # Examples
//!
//! ```
//! use cirlearn_aig::Aig;
//! use cirlearn_verify::{verify_pass, VerifyConfig, VerifyLevel, Violation};
//!
//! let mut g = Aig::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let y = g.xor(a, b);
//! g.add_output(y, "y");
//!
//! // A "pass" that flips the output is caught with a witness.
//! let mut broken = g.clone();
//! let e = broken.output_edge(0);
//! broken.set_output_unchecked(0, !e);
//! let cfg = VerifyConfig::at_level(VerifyLevel::Sim);
//! match verify_pass(&g, &broken, &cfg) {
//!     Err(Violation::Functional(w)) => assert!(w.distinguishes(&g, &broken)),
//!     other => panic!("expected a functional violation, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod lint;
mod witness;

pub use check::{verify_pass, ParseVerifyLevelError, VerifyConfig, VerifyLevel, Violation};
pub use lint::{lint, LintViolation, Linter};
pub use witness::Witness;
