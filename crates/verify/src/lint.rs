//! Structural linting of and-inverter graphs.
//!
//! The linter is a pure static pass: it never mutates the graph, never
//! panics on malformed input, and reports every violation it finds as a
//! typed [`LintViolation`] carrying the offending node id. It checks
//! exactly the invariants [`Aig`] promises — topological fanin order,
//! canonical structural hashing, no constant-reducible gates, valid
//! output references — so a clean report means downstream consumers
//! (simulation, CNF encoding, AIGER export) are safe to run.

use std::collections::HashMap;
use std::fmt;

use cirlearn_aig::Aig;

/// One structural defect found by the [`Linter`].
///
/// Node and fanin ids are raw node indices (0 = constant, `1..=i` =
/// inputs, the rest ANDs), matching [`cirlearn_aig::NodeId::index`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintViolation {
    /// An AND fanin refers to a node id outside the graph.
    FaninOutOfRange {
        /// The AND node holding the bad edge.
        node: usize,
        /// Which fanin slot (0 or 1).
        slot: usize,
        /// The out-of-range node id the edge points at.
        fanin: usize,
    },
    /// An AND fanin refers to itself or a later node, breaking the
    /// topological order (and with it acyclicity).
    NonTopologicalFanin {
        /// The AND node holding the bad edge.
        node: usize,
        /// Which fanin slot (0 or 1).
        slot: usize,
        /// The node id the edge points at (≥ `node`).
        fanin: usize,
    },
    /// An AND node stores its fanins out of canonical order
    /// (`fanin0.code() > fanin1.code()`), defeating structural hashing.
    UnorderedFanins {
        /// The offending AND node.
        node: usize,
    },
    /// Two AND nodes share the same ordered fanin pair — a structural-
    /// hashing miss that wastes a gate.
    DuplicateFaninPair {
        /// The later (redundant) AND node.
        node: usize,
        /// The earlier AND node with the identical fanin pair.
        first: usize,
    },
    /// An AND has a constant fanin, so it reduces to a constant or a
    /// wire (`x∧0`, `x∧1`).
    ConstantFanin {
        /// The offending AND node.
        node: usize,
        /// Which fanin slot (0 or 1) is constant.
        slot: usize,
    },
    /// An AND of a node with itself (`x∧x`) or its complement (`x∧¬x`)
    /// — always reducible to a wire or constant false.
    TrivialAnd {
        /// The offending AND node.
        node: usize,
    },
    /// An AND node is unreachable from every primary output.
    DanglingAnd {
        /// The unreachable AND node.
        node: usize,
    },
    /// A primary output points at a node id outside the graph.
    OutputOutOfRange {
        /// The output position.
        output: usize,
        /// The out-of-range node id the output points at.
        node: usize,
    },
}

impl LintViolation {
    /// Returns the id of the node the violation anchors to.
    pub fn node(&self) -> usize {
        match *self {
            LintViolation::FaninOutOfRange { node, .. }
            | LintViolation::NonTopologicalFanin { node, .. }
            | LintViolation::UnorderedFanins { node }
            | LintViolation::DuplicateFaninPair { node, .. }
            | LintViolation::ConstantFanin { node, .. }
            | LintViolation::TrivialAnd { node }
            | LintViolation::DanglingAnd { node }
            | LintViolation::OutputOutOfRange { node, .. } => node,
        }
    }

    /// Returns `true` if the violation makes the graph unsafe to
    /// simulate or encode (as opposed to merely suboptimal).
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            LintViolation::FaninOutOfRange { .. }
                | LintViolation::NonTopologicalFanin { .. }
                | LintViolation::OutputOutOfRange { .. }
        )
    }
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintViolation::FaninOutOfRange { node, slot, fanin } => {
                write!(
                    f,
                    "node {node}: fanin {slot} points outside the graph (node {fanin})"
                )
            }
            LintViolation::NonTopologicalFanin { node, slot, fanin } => {
                write!(
                    f,
                    "node {node}: fanin {slot} breaks topological order (node {fanin})"
                )
            }
            LintViolation::UnorderedFanins { node } => {
                write!(f, "node {node}: fanins are not in canonical order")
            }
            LintViolation::DuplicateFaninPair { node, first } => {
                write!(
                    f,
                    "node {node}: duplicate fanin pair (same as node {first})"
                )
            }
            LintViolation::ConstantFanin { node, slot } => {
                write!(f, "node {node}: fanin {slot} is a constant")
            }
            LintViolation::TrivialAnd { node } => {
                write!(
                    f,
                    "node {node}: trivial AND of a node with itself or its complement"
                )
            }
            LintViolation::DanglingAnd { node } => {
                write!(f, "node {node}: AND unreachable from every output")
            }
            LintViolation::OutputOutOfRange { output, node } => {
                write!(f, "output {output}: points outside the graph (node {node})")
            }
        }
    }
}

/// The structural AIG linter.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_verify::Linter;
///
/// let mut g = Aig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let y = g.and(a, b);
/// g.add_output(y, "y");
/// assert!(Linter::new().lint(&g).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Linter {
    allow_dangling: bool,
}

impl Linter {
    /// Creates a strict linter (dangling ANDs are violations).
    pub fn new() -> Self {
        Linter::default()
    }

    /// Whether to tolerate AND nodes unreachable from the outputs.
    ///
    /// Optimization passes legitimately strand nodes mid-pipeline
    /// (reachability, not node count, is the quality metric), so the
    /// checked-pass harness lints with `allow_dangling(true)`; the
    /// standalone `cirlearn lint` command stays strict.
    pub fn allow_dangling(mut self, yes: bool) -> Self {
        self.allow_dangling = yes;
        self
    }

    /// Checks every structural invariant of `aig`, returning all
    /// violations found (empty means clean). Never panics.
    pub fn lint(&self, aig: &Aig) -> Vec<LintViolation> {
        let mut violations = Vec::new();
        let node_count = aig.node_count();
        let mut seen_pairs: HashMap<(u32, u32), usize> = HashMap::new();

        for (node, a, b) in aig.ands() {
            let id = node.index();
            let mut structurally_sound = true;
            for (slot, e) in [a, b].into_iter().enumerate() {
                let fanin = e.node().index();
                if fanin >= node_count {
                    violations.push(LintViolation::FaninOutOfRange {
                        node: id,
                        slot,
                        fanin,
                    });
                    structurally_sound = false;
                } else if fanin >= id {
                    violations.push(LintViolation::NonTopologicalFanin {
                        node: id,
                        slot,
                        fanin,
                    });
                    structurally_sound = false;
                }
            }
            if a.code() > b.code() {
                violations.push(LintViolation::UnorderedFanins { node: id });
            }
            if a == b || a == !b {
                violations.push(LintViolation::TrivialAnd { node: id });
            } else {
                for (slot, e) in [a, b].into_iter().enumerate() {
                    if e.node() == cirlearn_aig::NodeId::CONST {
                        violations.push(LintViolation::ConstantFanin { node: id, slot });
                    }
                }
            }
            if structurally_sound {
                let key = if a.code() <= b.code() {
                    (a.code(), b.code())
                } else {
                    (b.code(), a.code())
                };
                if let Some(&first) = seen_pairs.get(&key) {
                    violations.push(LintViolation::DuplicateFaninPair { node: id, first });
                } else {
                    seen_pairs.insert(key, id);
                }
            }
        }

        for (position, (e, _)) in aig.outputs().iter().enumerate() {
            if e.node().index() >= node_count {
                violations.push(LintViolation::OutputOutOfRange {
                    output: position,
                    node: e.node().index(),
                });
            }
        }

        if !self.allow_dangling {
            violations.extend(self.dangling(aig));
        }
        violations
    }

    /// Marks reachability from the (in-range) outputs and reports every
    /// unreachable AND.
    fn dangling(&self, aig: &Aig) -> Vec<LintViolation> {
        let node_count = aig.node_count();
        let mut reachable = vec![false; node_count];
        let mut stack: Vec<usize> = aig
            .outputs()
            .iter()
            .map(|(e, _)| e.node().index())
            .filter(|&n| n < node_count)
            .collect();
        while let Some(n) = stack.pop() {
            if reachable[n] || !aig.is_and(cirlearn_aig::NodeId::from_index(n)) {
                continue;
            }
            reachable[n] = true;
            let [a, b] = aig.fanins(cirlearn_aig::NodeId::from_index(n));
            for e in [a, b] {
                let fanin = e.node().index();
                if fanin < n {
                    stack.push(fanin);
                }
            }
        }
        aig.ands()
            .filter(|(node, _, _)| !reachable[node.index()])
            .map(|(node, _, _)| LintViolation::DanglingAnd { node: node.index() })
            .collect()
    }
}

/// Lints with the strict default configuration.
pub fn lint(aig: &Aig) -> Vec<LintViolation> {
    Linter::new().lint(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_aig::Edge;

    fn clean_aig() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let f = g.or(ab, c);
        g.add_output(f, "f");
        g
    }

    #[test]
    fn clean_graph_has_no_violations() {
        assert!(lint(&clean_aig()).is_empty());
    }

    #[test]
    fn detects_dangling_and_only_when_strict() {
        let mut g = clean_aig();
        let a = g.input_edge(0);
        let c = g.input_edge(2);
        let _stranded = g.and(a, c);
        let strict = lint(&g);
        assert_eq!(strict.len(), 1);
        assert!(matches!(strict[0], LintViolation::DanglingAnd { .. }));
        assert!(Linter::new().allow_dangling(true).lint(&g).is_empty());
    }

    #[test]
    fn detects_unordered_fanins() {
        let mut g = clean_aig();
        let node = g.ands().next().expect("has an AND").0;
        let [a, b] = g.fanins(node);
        g.set_fanin_unchecked(node, 0, b);
        g.set_fanin_unchecked(node, 1, a);
        let v = lint(&g);
        assert!(
            v.iter()
                .any(|v| matches!(v, LintViolation::UnorderedFanins { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn detects_non_topological_fanin_and_self_loop() {
        let mut g = clean_aig();
        let last = g.ands().last().expect("has ANDs").0;
        let first = g.ands().next().expect("has ANDs").0;
        // Redirect the first AND's fanin forward to the last AND.
        g.set_fanin_unchecked(first, 0, Edge::new(last, false));
        let v = lint(&g);
        assert!(
            v.iter()
                .any(|v| matches!(v, LintViolation::NonTopologicalFanin { slot: 0, .. })),
            "{v:?}"
        );
        // A self-loop is also non-topological.
        let mut g2 = clean_aig();
        g2.set_fanin_unchecked(first, 1, Edge::new(first, true));
        assert!(g2
            .ands()
            .next()
            .map(|(n, _, b)| n == b.node())
            .expect("has ANDs"));
        let v2 = lint(&g2);
        assert!(
            v2.iter()
                .any(|v| matches!(v, LintViolation::NonTopologicalFanin { slot: 1, .. })),
            "{v2:?}"
        );
    }

    #[test]
    fn detects_fanin_out_of_range() {
        let mut g = clean_aig();
        let node = g.ands().next().expect("has an AND").0;
        let bogus = Edge::from_code(2 * (g.node_count() as u32 + 5));
        g.set_fanin_unchecked(node, 1, bogus);
        let v = lint(&g);
        assert!(
            v.iter()
                .any(|v| matches!(v, LintViolation::FaninOutOfRange { slot: 1, .. })),
            "{v:?}"
        );
        assert!(v.iter().any(LintViolation::is_structural));
    }

    #[test]
    fn detects_duplicate_pair() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let ab = g.and(a, b);
        let other = g.and(!a, b);
        let y = g.and(ab, other);
        g.add_output(y, "y");
        // Turn `other` into a copy of `ab`'s fanin pair behind the
        // strash table's back.
        g.set_fanin_unchecked(other.node(), 0, a);
        g.set_fanin_unchecked(other.node(), 1, b);
        let v = lint(&g);
        assert!(
            v.iter().any(|v| matches!(
                v,
                LintViolation::DuplicateFaninPair { first, .. } if *first == ab.node().index()
            )),
            "{v:?}"
        );
    }

    #[test]
    fn detects_constant_and_trivial_ands() {
        let mut g = clean_aig();
        let node = g.ands().next().expect("has an AND").0;
        let [a, _] = g.fanins(node);
        // x ∧ 1 — constant fanin.
        g.set_fanin_unchecked(node, 1, Edge::TRUE);
        let v = lint(&g);
        assert!(
            v.iter()
                .any(|v| matches!(v, LintViolation::ConstantFanin { slot: 1, .. })),
            "{v:?}"
        );
        // x ∧ ¬x — trivial AND.
        g.set_fanin_unchecked(node, 1, !a);
        let v = lint(&g);
        assert!(
            v.iter()
                .any(|v| matches!(v, LintViolation::TrivialAnd { .. })),
            "{v:?}"
        );
        // x ∧ x — also trivial.
        g.set_fanin_unchecked(node, 1, a);
        let v = lint(&g);
        assert!(
            v.iter()
                .any(|v| matches!(v, LintViolation::TrivialAnd { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn detects_output_out_of_range() {
        let mut g = clean_aig();
        let bogus = Edge::from_code(2 * (g.node_count() as u32 + 1) + 1);
        g.set_output_unchecked(0, bogus);
        let v = lint(&g);
        assert!(
            v.iter()
                .any(|v| matches!(v, LintViolation::OutputOutOfRange { output: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn violations_display_node_ids() {
        let mut g = clean_aig();
        let node = g.ands().next().expect("has an AND").0;
        g.set_fanin_unchecked(node, 1, Edge::TRUE);
        let v = lint(&g);
        let text = v[0].to_string();
        assert!(text.contains(&node.index().to_string()), "{text}");
        assert_eq!(v[0].node(), node.index());
    }

    #[test]
    fn lint_never_panics_on_corruption() {
        // Even a graph whose output points past the end and whose
        // fanins cycle must produce a report, not a panic.
        let mut g = clean_aig();
        let first = g.ands().next().expect("has ANDs").0;
        g.set_fanin_unchecked(first, 0, Edge::from_code(9999));
        g.set_output_unchecked(0, Edge::from_code(8888));
        let v = lint(&g);
        assert!(!v.is_empty());
    }
}
