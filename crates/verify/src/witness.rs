//! Counterexample witnesses and their minimization.

use std::fmt;

use cirlearn_aig::Aig;
use cirlearn_logic::{Assignment, Var};
use cirlearn_sat::Counterexample;

/// A concrete demonstration that two circuits disagree: an input
/// assignment and the index of an output that differs under it.
///
/// Witnesses produced by the harness are minimized by greedy
/// bit-flipping (see [`Witness::minimize`]) so the report shows the
/// sparsest distinguishing input found, which is far easier to debug
/// than a random SAT model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The distinguishing primary-input assignment.
    pub inputs: Assignment,
    /// The index of an output that differs under `inputs`.
    pub output: usize,
}

impl Witness {
    /// Returns `true` if the two circuits really disagree on
    /// `self.output` under `self.inputs` — the re-simulation check the
    /// mutation self-tests use to prove a witness is genuine.
    ///
    /// Returns `false` (rather than panicking) when the witness width
    /// or output index does not fit the circuits.
    pub fn distinguishes(&self, left: &Aig, right: &Aig) -> bool {
        if self.inputs.len() != left.num_inputs()
            || self.inputs.len() != right.num_inputs()
            || self.output >= left.num_outputs()
            || self.output >= right.num_outputs()
        {
            return false;
        }
        left.eval(&self.inputs)[self.output] != right.eval(&self.inputs)[self.output]
    }

    /// Greedily minimizes the witness: tries to clear each set bit in
    /// turn, keeping a flip whenever the circuits still disagree on the
    /// witnessed output. Iterates to a fixpoint, so the result is
    /// locally minimal (no single set bit can be cleared).
    ///
    /// The witness must distinguish the circuits on entry; if it does
    /// not, it is returned unchanged.
    #[must_use]
    pub fn minimize(mut self, left: &Aig, right: &Aig) -> Witness {
        if !self.distinguishes(left, right) {
            return self;
        }
        loop {
            let mut changed = false;
            for k in 0..self.inputs.len() {
                let var = Var::new(k as u32);
                if !self.inputs.get(var) {
                    continue;
                }
                let candidate = self.inputs.with(var, false);
                let trial = Witness {
                    inputs: candidate,
                    output: self.output,
                };
                if trial.distinguishes(left, right) {
                    self = trial;
                    changed = true;
                }
            }
            if !changed {
                return self;
            }
        }
    }
}

impl From<Counterexample> for Witness {
    fn from(cex: Counterexample) -> Self {
        Witness {
            inputs: cex.inputs,
            output: cex.output,
        }
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "output {} differs on input {}", self.output, self.inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `left` = OR of 4 inputs, `right` = OR of the first 3: they
    /// differ exactly when x3=1 and x0..x2 are all 0.
    fn or_pair() -> (Aig, Aig) {
        let mut l = Aig::new();
        let xs = l.add_inputs("x", 4);
        let y = l.or_many(&xs);
        l.add_output(y, "y");
        let mut r = Aig::new();
        let xs = r.add_inputs("x", 4);
        let y = r.or_many(&xs[..3]);
        r.add_output(y, "y");
        (l, r)
    }

    #[test]
    fn distinguishes_is_re_simulation() {
        let (l, r) = or_pair();
        let good = Witness {
            inputs: Assignment::from_bits([false, false, false, true]),
            output: 0,
        };
        assert!(good.distinguishes(&l, &r));
        let bad = Witness {
            inputs: Assignment::from_bits([true, false, false, true]),
            output: 0,
        };
        assert!(!bad.distinguishes(&l, &r));
    }

    #[test]
    fn mismatched_width_or_output_is_not_distinguishing() {
        let (l, r) = or_pair();
        let wrong_width = Witness {
            inputs: Assignment::from_bits([true, true]),
            output: 0,
        };
        assert!(!wrong_width.distinguishes(&l, &r));
        let wrong_output = Witness {
            inputs: Assignment::from_bits([false, false, false, true]),
            output: 3,
        };
        assert!(!wrong_output.distinguishes(&l, &r));
    }

    #[test]
    fn minimize_reaches_local_minimum() {
        // left = x3, right = constant 0 over 4 inputs: any assignment
        // with x3=1 distinguishes; the minimal one has only x3 set.
        let mut l = Aig::new();
        let xs = l.add_inputs("x", 4);
        l.add_output(xs[3], "y");
        let mut r = Aig::new();
        let _ = r.add_inputs("x", 4);
        r.add_output(cirlearn_aig::Edge::FALSE, "y");
        let w = Witness {
            inputs: Assignment::ones(4),
            output: 0,
        };
        let min = w.minimize(&l, &r);
        assert!(min.distinguishes(&l, &r));
        assert_eq!(min.inputs.count_ones(), 1);
        assert!(min.inputs.get(Var::new(3)));
    }

    #[test]
    fn minimize_keeps_required_bits() {
        let (l, r) = or_pair();
        let w = Witness {
            inputs: Assignment::from_bits([false, false, false, true]),
            output: 0,
        };
        // Already minimal: x3 is required for a difference.
        let min = w.clone().minimize(&l, &r);
        assert_eq!(min, w);
    }

    #[test]
    fn minimize_returns_non_witness_unchanged() {
        let (l, r) = or_pair();
        let not_a_witness = Witness {
            inputs: Assignment::ones(4),
            output: 0,
        };
        assert!(!not_a_witness.distinguishes(&l, &r));
        assert_eq!(not_a_witness.clone().minimize(&l, &r), not_a_witness);
    }
}
