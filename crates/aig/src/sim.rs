//! Bit-parallel and single-pattern simulation.

use cirlearn_logic::{Assignment, SimVector};

use crate::{Aig, Edge};

impl Aig {
    /// Simulates the whole graph on a block of patterns, returning one
    /// [`SimVector`] per node (indexed by node id).
    ///
    /// `inputs[k]` holds the pattern bits of the `k`-th primary input.
    /// All input vectors must have the same pattern count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs` or pattern counts differ.
    pub fn simulate_nodes(&self, inputs: &[SimVector]) -> Vec<SimVector> {
        // panic-ok: documented `# Panics` contract guard, once per
        // simulated block (not per pattern).
        assert_eq!(inputs.len(), self.num_inputs(), "wrong input count");
        let patterns = inputs.first().map_or(0, SimVector::len);
        let mut values = Vec::with_capacity(self.node_count());
        values.push(SimVector::zeros(patterns));
        for v in inputs {
            // panic-ok: documented `# Panics` contract guard, once per
            // input vector.
            assert_eq!(v.len(), patterns, "pattern counts differ across inputs");
            values.push(v.clone());
        }
        for (_, a, b) in self.ands() {
            // panic-ok: fanin edges point at earlier nodes (topological
            // order by construction), all already pushed.
            let va = &values[a.node().index()];
            // panic-ok: same topological-order invariant.
            let vb = &values[b.node().index()];
            let v = SimVector::and2(va, a.is_complemented(), vb, b.is_complemented());
            values.push(v);
        }
        values
    }

    /// Simulates the graph on a block of patterns, returning one
    /// [`SimVector`] per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs` or pattern counts differ.
    pub fn simulate(&self, inputs: &[SimVector]) -> Vec<SimVector> {
        let values = self.simulate_nodes(inputs);
        self.outputs()
            .iter()
            .map(|(e, _)| resolve(&values, *e))
            .collect()
    }

    /// Simulates a batch of full assignments, returning the output bits
    /// of each assignment in order.
    ///
    /// This is the access pattern of a black-box oracle: rows in, rows
    /// out. Internally the rows are transposed and evaluated 64 at a
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if any assignment is not exactly `num_inputs` wide.
    pub fn eval_batch(&self, patterns: &[Assignment]) -> Vec<Vec<bool>> {
        for p in patterns {
            // panic-ok: documented `# Panics` contract guard, once per
            // row (not per bit).
            assert_eq!(p.len(), self.num_inputs(), "wrong assignment width");
        }
        let inputs: Vec<SimVector> = (0..self.num_inputs() as u32)
            .map(|k| SimVector::column(patterns, k))
            .collect();
        let outputs = self.simulate(&inputs);
        (0..patterns.len())
            .map(|row| outputs.iter().map(|v| v.bit(row)).collect())
            .collect()
    }

    /// Evaluates all outputs on one full assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not exactly `num_inputs` wide.
    pub fn eval(&self, assignment: &Assignment) -> Vec<bool> {
        let bits: Vec<bool> = assignment.iter().collect();
        self.eval_bits(&bits)
    }
}

fn resolve(values: &[SimVector], e: Edge) -> SimVector {
    // panic-ok: `values` holds one vector per node and edges point at
    // existing nodes (checked when the edge was created).
    let mut v = values[e.node().index()].clone();
    if e.is_complemented() {
        v.not_assign();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_logic::Var;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_aig() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.xor(a, b);
        let f = g.mux(c, ab, !a);
        g.add_output(f, "f");
        g.add_output(!ab, "g");
        g
    }

    #[test]
    fn simulate_matches_eval_bits() {
        let g = sample_aig();
        let mut rng = StdRng::seed_from_u64(11);
        let patterns: Vec<Assignment> = (0..200).map(|_| Assignment::random(3, &mut rng)).collect();
        let batch = g.eval_batch(&patterns);
        for (row, p) in patterns.iter().enumerate() {
            let bits: Vec<bool> = p.iter().collect();
            assert_eq!(batch[row], g.eval_bits(&bits), "row {row}");
        }
    }

    #[test]
    fn eval_matches_eval_bits() {
        let g = sample_aig();
        let mut a = Assignment::zeros(3);
        a.set(Var::new(1), true);
        assert_eq!(g.eval(&a), g.eval_bits(&[false, true, false]));
    }

    #[test]
    fn simulate_complemented_output() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        g.add_output(!a, "na");
        let inputs = vec![SimVector::from_bits([true, false, true])];
        let out = g.simulate(&inputs);
        assert_eq!(out[0].iter().collect::<Vec<_>>(), vec![false, true, false]);
    }

    #[test]
    fn empty_pattern_block() {
        let g = sample_aig();
        let out = g.eval_batch(&[]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn wrong_input_count_panics() {
        let g = sample_aig();
        g.simulate(&[SimVector::zeros(4)]);
    }
}
