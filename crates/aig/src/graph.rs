//! The and-inverter graph container.

use std::collections::HashMap;
use std::fmt;

use cirlearn_logic::{Sop, TruthTable};

use crate::{Edge, NodeId};

/// A multi-output and-inverter graph.
///
/// Invariants:
///
/// * node 0 is the constant-false node,
/// * nodes `1..=num_inputs` are primary inputs, created before any AND,
/// * AND nodes are stored in topological order (fanins precede fanouts),
/// * structural hashing guarantees no two AND nodes have the same
///   (ordered) fanin pair.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let c = aig.and(a, b);
/// let c2 = aig.and(b, a); // structurally hashed
/// assert_eq!(c, c2);
/// aig.add_output(c, "y");
/// assert_eq!(aig.gate_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aig {
    /// Fanins, indexed by node id. Entries for the constant node and the
    /// primary inputs are `[Edge::FALSE; 2]` sentinels and never read.
    fanins: Vec<[Edge; 2]>,
    num_inputs: usize,
    input_names: Vec<String>,
    outputs: Vec<(Edge, String)>,
    strash: HashMap<(u32, u32), u32>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            fanins: vec![[Edge::FALSE; 2]],
            num_inputs: 0,
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Creates an empty AIG with the same primary inputs (and names) as
    /// `other` — the canvas on which optimization passes rebuild.
    pub fn with_inputs_like(other: &Aig) -> Self {
        let mut aig = Aig::new();
        for name in &other.input_names {
            aig.add_input(name.clone());
        }
        aig
    }

    /// Adds a primary input and returns its (positive) edge.
    ///
    /// # Panics
    ///
    /// Panics if any AND node has already been created; inputs must come
    /// first so ids `1..=num_inputs` are exactly the inputs.
    pub fn add_input(&mut self, name: impl Into<String>) -> Edge {
        assert_eq!(
            self.fanins.len(),
            self.num_inputs + 1,
            "inputs must be added before any AND node"
        );
        self.fanins.push([Edge::FALSE; 2]);
        self.num_inputs += 1;
        self.input_names.push(name.into());
        Edge::new(NodeId(self.num_inputs as u32), false)
    }

    /// Adds `count` anonymous inputs named `prefix0..`, returning their edges.
    pub fn add_inputs(&mut self, prefix: &str, count: usize) -> Vec<Edge> {
        (0..count)
            .map(|i| self.add_input(format!("{prefix}{i}")))
            .collect()
    }

    /// Registers `edge` as a primary output with the given name.
    pub fn add_output(&mut self, edge: Edge, name: impl Into<String>) {
        self.assert_valid(edge);
        debug_assert!(
            edge.node() == NodeId::CONST || self.is_input(edge.node()) || self.is_and(edge.node()),
            "output edge {edge} does not point at a constant, input or AND node"
        );
        self.outputs.push((edge, name.into()));
    }

    /// Returns the AND of two edges, reusing existing structure.
    ///
    /// Applies the trivial simplifications (constants, idempotence,
    /// complementation) before consulting the structural-hash table.
    pub fn and(&mut self, a: Edge, b: Edge) -> Edge {
        self.assert_valid(a);
        self.assert_valid(b);
        // Trivial cases.
        if a == Edge::FALSE || b == Edge::FALSE || a == !b {
            return Edge::FALSE;
        }
        if a == Edge::TRUE {
            return b;
        }
        if b == Edge::TRUE || a == b {
            return a;
        }
        let (a, b) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&(a.code(), b.code())) {
            return Edge::new(NodeId(node), false);
        }
        let id = self.fanins.len() as u32;
        debug_assert!(
            a.code() <= b.code(),
            "AND fanins must be stored in canonical (ordered) form"
        );
        debug_assert!(
            a.node().index() < id as usize && b.node().index() < id as usize,
            "AND fanins must precede the node (topological order)"
        );
        self.fanins.push([a, b]);
        self.strash.insert((a.code(), b.code()), id);
        Edge::new(NodeId(id), false)
    }

    /// Returns the OR of two edges.
    pub fn or(&mut self, a: Edge, b: Edge) -> Edge {
        !self.and(!a, !b)
    }

    /// Returns the XOR of two edges (3 AND nodes in the worst case).
    pub fn xor(&mut self, a: Edge, b: Edge) -> Edge {
        let n0 = self.and(a, !b);
        let n1 = self.and(!a, b);
        self.or(n0, n1)
    }

    /// Returns the XNOR of two edges.
    pub fn xnor(&mut self, a: Edge, b: Edge) -> Edge {
        !self.xor(a, b)
    }

    /// Returns `if sel then t else e`.
    pub fn mux(&mut self, sel: Edge, t: Edge, e: Edge) -> Edge {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// Returns the conjunction of all edges, as a balanced tree.
    ///
    /// An empty slice yields the constant-true edge.
    pub fn and_many(&mut self, edges: &[Edge]) -> Edge {
        self.balanced(edges, Edge::TRUE, Self::and)
    }

    /// Returns the disjunction of all edges, as a balanced tree.
    ///
    /// An empty slice yields the constant-false edge.
    pub fn or_many(&mut self, edges: &[Edge]) -> Edge {
        self.balanced(edges, Edge::FALSE, Self::or)
    }

    fn balanced(
        &mut self,
        edges: &[Edge],
        unit: Edge,
        mut op: impl FnMut(&mut Self, Edge, Edge) -> Edge,
    ) -> Edge {
        match edges {
            [] => unit,
            [e] => *e,
            _ => {
                let mut layer = edges.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            op(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Builds an [`Sop`] over this AIG, mapping SOP variable `x_k` to
    /// `var_map[k]`.
    ///
    /// # Panics
    ///
    /// Panics if the SOP mentions a variable with no entry in `var_map`.
    pub fn add_sop(&mut self, sop: &Sop, var_map: &[Edge]) -> Edge {
        let mut cube_edges = Vec::with_capacity(sop.cubes().len());
        for cube in sop.cubes() {
            let lits: Vec<Edge> = cube
                .literals()
                .iter()
                .map(|l| var_map[l.var().index() as usize].complement_if(l.is_negated()))
                .collect();
            cube_edges.push(self.and_many(&lits));
        }
        self.or_many(&cube_edges)
    }

    /// Returns the number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Returns the number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Returns the total number of nodes (constant + inputs + ANDs).
    pub fn node_count(&self) -> usize {
        self.fanins.len()
    }

    /// Returns the number of AND nodes, including dangling ones.
    pub fn and_count(&self) -> usize {
        self.fanins.len() - 1 - self.num_inputs
    }

    /// Returns the number of AND nodes reachable from the outputs — the
    /// circuit-size metric of the contest (2-input gates; inverters are
    /// absorbed into gate polarities).
    pub fn gate_count(&self) -> usize {
        let mut mark = vec![false; self.fanins.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|(e, _)| e.node()).collect();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if mark[n.index()] || !self.is_and(n) {
                continue;
            }
            mark[n.index()] = true;
            count += 1;
            stack.push(self.fanins[n.index()][0].node());
            stack.push(self.fanins[n.index()][1].node());
        }
        count
    }

    /// Returns the number of AND nodes in the transitive fanin cone of
    /// the `position`-th output. Cones of different outputs may share
    /// nodes, so the per-output cone sizes can sum to more than
    /// [`Aig::gate_count`].
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ num_outputs`.
    pub fn output_cone_size(&self, position: usize) -> usize {
        let mut mark = vec![false; self.fanins.len()];
        let mut stack = vec![self.outputs[position].0.node()];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if mark[n.index()] || !self.is_and(n) {
                continue;
            }
            mark[n.index()] = true;
            count += 1;
            stack.push(self.fanins[n.index()][0].node());
            stack.push(self.fanins[n.index()][1].node());
        }
        count
    }

    /// Returns the logic level of every node (inputs and the constant
    /// at level 0; an AND is one above its deepest fanin).
    pub fn node_levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.fanins.len()];
        for i in self.num_inputs + 1..self.fanins.len() {
            let [a, b] = self.fanins[i];
            levels[i] = 1 + levels[a.node().index()].max(levels[b.node().index()]);
        }
        levels
    }

    /// Returns the circuit depth: the maximum logic level over the
    /// outputs (0 for a circuit of wires and constants).
    pub fn depth(&self) -> usize {
        let levels = self.node_levels();
        self.outputs
            .iter()
            .map(|(e, _)| levels[e.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `node` is an AND node.
    pub fn is_and(&self, node: NodeId) -> bool {
        node.index() > self.num_inputs && node.index() < self.fanins.len()
    }

    /// Returns `true` if `node` is a primary input.
    pub fn is_input(&self, node: NodeId) -> bool {
        (1..=self.num_inputs).contains(&node.index())
    }

    /// Returns the primary-input position of `node`, if it is an input.
    pub fn input_position(&self, node: NodeId) -> Option<usize> {
        self.is_input(node).then(|| node.index() - 1)
    }

    /// Returns the edge of the `position`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ num_inputs`.
    pub fn input_edge(&self, position: usize) -> Edge {
        assert!(position < self.num_inputs, "input {position} out of range");
        Edge::new(NodeId(position as u32 + 1), false)
    }

    /// Returns the name of the `position`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ num_inputs`.
    pub fn input_name(&self, position: usize) -> &str {
        &self.input_names[position]
    }

    /// Returns all input names in input order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Replaces all input names at once (e.g. after parsing a symbol
    /// table).
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != num_inputs`.
    pub fn rename_inputs(&mut self, names: &[String]) {
        assert_eq!(names.len(), self.num_inputs, "wrong name count");
        self.input_names = names.to_vec();
    }

    /// Returns the outputs as `(edge, name)` pairs in output order.
    pub fn outputs(&self) -> &[(Edge, String)] {
        &self.outputs
    }

    /// Returns the edge driving the `position`-th output.
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ num_outputs`.
    pub fn output_edge(&self, position: usize) -> Edge {
        self.outputs[position].0
    }

    /// Returns the fanins of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an AND node.
    pub fn fanins(&self, node: NodeId) -> [Edge; 2] {
        assert!(self.is_and(node), "{node} is not an AND node");
        self.fanins[node.index()]
    }

    /// Iterates over the AND nodes in topological order as
    /// `(node, fanin0, fanin1)`.
    pub fn ands(&self) -> impl Iterator<Item = (NodeId, Edge, Edge)> + '_ {
        (self.num_inputs + 1..self.fanins.len())
            // panic-ok: `i` ranges over `fanins` indices by construction.
            .map(move |i| (NodeId(i as u32), self.fanins[i][0], self.fanins[i][1]))
    }

    /// Evaluates all outputs on a single input pattern given as a bit
    /// slice in input order.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_inputs`.
    pub fn eval_bits(&self, bits: &[bool]) -> Vec<bool> {
        // panic-ok: documented `# Panics` contract guard, once per
        // evaluation (not per node).
        assert_eq!(bits.len(), self.num_inputs, "wrong input width");
        let mut values = vec![false; self.fanins.len()];
        for (i, &b) in bits.iter().enumerate() {
            // panic-ok: `i < num_inputs ≤ fanins.len() - 1` after the
            // width guard; slot 0 is the constant node.
            values[i + 1] = b;
        }
        for i in self.num_inputs + 1..self.fanins.len() {
            // panic-ok: `i` ranges over `fanins` indices.
            let [a, b] = self.fanins[i];
            // panic-ok: fanin edges point at earlier nodes (the graph
            // is topologically ordered by construction).
            let va = values[a.node().index()] != a.is_complemented();
            // panic-ok: same topological-order invariant.
            let vb = values[b.node().index()] != b.is_complemented();
            // panic-ok: `i < fanins.len() == values.len()`.
            values[i] = va && vb;
        }
        self.outputs
            .iter()
            // panic-ok: output edges point at existing nodes (checked
            // when the output was added).
            .map(|(e, _)| values[e.node().index()] != e.is_complemented())
            .collect()
    }

    /// Removes dangling AND nodes, returning a compacted copy with the
    /// same inputs, outputs and names.
    #[must_use]
    pub fn cleanup(&self) -> Aig {
        let mut keep = vec![false; self.fanins.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|(e, _)| e.node()).collect();
        while let Some(n) = stack.pop() {
            if keep[n.index()] || !self.is_and(n) {
                continue;
            }
            keep[n.index()] = true;
            stack.push(self.fanins[n.index()][0].node());
            stack.push(self.fanins[n.index()][1].node());
        }
        let mut out = Aig::with_inputs_like(self);
        let mut map: Vec<Edge> = vec![Edge::FALSE; self.fanins.len()];
        for (i, m) in map.iter_mut().enumerate().take(self.num_inputs + 1) {
            *m = Edge::new(NodeId(i as u32), false);
        }
        for i in self.num_inputs + 1..self.fanins.len() {
            if keep[i] {
                let [a, b] = self.fanins[i];
                let na = map[a.node().index()].complement_if(a.is_complemented());
                let nb = map[b.node().index()].complement_if(b.is_complemented());
                map[i] = out.and(na, nb);
            }
        }
        for (e, name) in &self.outputs {
            let ne = map[e.node().index()].complement_if(e.is_complemented());
            out.add_output(ne, name.clone());
        }
        out
    }

    /// Computes the exact truth table of every output by symbolic
    /// simulation with truth-table values.
    ///
    /// # Errors
    ///
    /// Returns an error if the AIG has more than
    /// [`TruthTable::MAX_VARS`] inputs.
    pub fn output_truth_tables(&self) -> cirlearn_logic::Result<Vec<TruthTable>> {
        let n = self.num_inputs;
        let mut values: Vec<TruthTable> = Vec::with_capacity(self.fanins.len());
        values.push(TruthTable::zeros(n)?);
        for i in 0..n {
            values.push(TruthTable::var(n, cirlearn_logic::Var::new(i as u32))?);
        }
        for i in n + 1..self.fanins.len() {
            let [a, b] = self.fanins[i];
            let ta = resolve_tt(&values, a);
            let tb = resolve_tt(&values, b);
            values.push(ta & tb);
        }
        Ok(self
            .outputs
            .iter()
            .map(|(e, _)| resolve_tt(&values, *e))
            .collect())
    }

    /// Overwrites one fanin of an AND node **without** re-hashing or
    /// re-checking any structural invariant.
    ///
    /// This is a fault-injection hook for verification tooling: it lets
    /// tests corrupt a well-formed circuit (flip a complement bit,
    /// redirect an edge, create a duplicate fanin pair) and assert that
    /// the linter and the checked-pass harness catch the damage. The
    /// structural-hash table is intentionally left stale; do not keep
    /// building logic with [`Aig::and`] after calling this.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an AND node or `slot ≥ 2`.
    pub fn set_fanin_unchecked(&mut self, node: NodeId, slot: usize, edge: Edge) {
        assert!(self.is_and(node), "{node} is not an AND node");
        assert!(slot < 2, "fanin slot {slot} out of range");
        self.fanins[node.index()][slot] = edge;
    }

    /// Redirects the `position`-th output **without** validating the new
    /// edge.
    ///
    /// Like [`Aig::set_fanin_unchecked`], this exists so verification
    /// tests can seed corruptions (e.g. an output pointing outside the
    /// graph) that the safe API refuses to construct.
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ num_outputs`.
    pub fn set_output_unchecked(&mut self, position: usize, edge: Edge) {
        self.outputs[position].0 = edge;
    }

    fn assert_valid(&self, e: Edge) {
        assert!(
            e.node().index() < self.fanins.len(),
            "edge {e} refers to a node outside this AIG"
        );
    }
}

fn resolve_tt(values: &[TruthTable], e: Edge) -> TruthTable {
    let t = values[e.node().index()].clone();
    if e.is_complemented() {
        !t
    } else {
        t
    }
}

impl fmt::Display for Aig {
    /// Formats a short statistics line, e.g. `aig: i=3 o=1 and=5`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aig: i={} o={} and={}",
            self.num_inputs,
            self.outputs.len(),
            self.and_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_and_rules() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        assert_eq!(g.and(a, Edge::FALSE), Edge::FALSE);
        assert_eq!(g.and(Edge::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Edge::FALSE);
        assert_eq!(g.and_count(), 0);
    }

    #[test]
    fn output_cone_sizes_count_shared_nodes_per_output() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_output(ab, "y0");
        g.add_output(abc, "y1");
        g.add_output(a, "y2");
        assert_eq!(g.output_cone_size(0), 1);
        assert_eq!(g.output_cone_size(1), 2);
        assert_eq!(g.output_cone_size(2), 0);
        // Shared nodes count once globally but per output in cones.
        assert_eq!(g.gate_count(), 2);
    }

    #[test]
    fn structural_hashing_is_commutative() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let ab = g.and(a, b);
        assert_eq!(g.and(b, a), ab);
        assert_eq!(g.and(a, b), ab);
        assert_eq!(g.and_count(), 1);
        // Complemented variants are distinct nodes.
        let n = g.and(!a, b);
        assert_ne!(n, ab);
        assert_eq!(g.and_count(), 2);
    }

    #[test]
    #[should_panic(expected = "inputs must be added before")]
    fn inputs_after_ands_panic() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        g.and(a, b);
        g.add_input("late");
    }

    #[test]
    fn eval_basic_gates() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let and = g.and(a, b);
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        let xnor = g.xnor(a, b);
        g.add_output(and, "and");
        g.add_output(or, "or");
        g.add_output(xor, "xor");
        g.add_output(xnor, "xnor");
        for (bits, expect) in [
            ([false, false], [false, false, false, true]),
            ([false, true], [false, true, true, false]),
            ([true, false], [false, true, true, false]),
            ([true, true], [true, true, false, true]),
        ] {
            assert_eq!(g.eval_bits(&bits), expect.to_vec(), "{bits:?}");
        }
    }

    #[test]
    fn mux_semantics() {
        let mut g = Aig::new();
        let s = g.add_input("s");
        let t = g.add_input("t");
        let e = g.add_input("e");
        let m = g.mux(s, t, e);
        g.add_output(m, "m");
        for bits in 0..8u32 {
            let vals = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
            let expect = if vals[0] { vals[1] } else { vals[2] };
            assert_eq!(g.eval_bits(&vals), vec![expect]);
        }
    }

    #[test]
    fn and_many_or_many() {
        let mut g = Aig::new();
        let edges = g.add_inputs("x", 5);
        let all = g.and_many(&edges);
        let any = g.or_many(&edges);
        g.add_output(all, "all");
        g.add_output(any, "any");
        assert_eq!(g.and_many(&[]), Edge::TRUE);
        assert_eq!(g.or_many(&[]), Edge::FALSE);
        for pattern in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            let out = g.eval_bits(&bits);
            assert_eq!(out[0], bits.iter().all(|&b| b));
            assert_eq!(out[1], bits.iter().any(|&b| b));
        }
    }

    #[test]
    fn add_sop_matches_semantics() {
        use cirlearn_logic::{Cube, Var};
        let mut g = Aig::new();
        let inputs = g.add_inputs("x", 3);
        // x0 & !x1 | x2
        let sop = Sop::from_cubes([
            Cube::from_literals([Var::new(0).positive(), Var::new(1).negative()]).unwrap(),
            Cube::from_literals([Var::new(2).positive()]).unwrap(),
        ]);
        let f = g.add_sop(&sop, &inputs);
        g.add_output(f, "f");
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            let expect = sop.eval_with(|v| m >> v.index() & 1 == 1);
            assert_eq!(g.eval_bits(&bits), vec![expect], "m={m}");
        }
    }

    #[test]
    fn sop_constants() {
        let mut g = Aig::new();
        let _ = g.add_inputs("x", 2);
        let zero = g.add_sop(&Sop::zero(), &[]);
        let one = g.add_sop(&Sop::one(), &[]);
        assert_eq!(zero, Edge::FALSE);
        assert_eq!(one, Edge::TRUE);
    }

    #[test]
    fn gate_count_reachable_only() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let used = g.and(a, b);
        let _dangling = g.and(!a, !b);
        g.add_output(used, "y");
        assert_eq!(g.and_count(), 2);
        assert_eq!(g.gate_count(), 1);
    }

    #[test]
    fn cleanup_removes_dangling_preserves_function() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let used = g.xor(a, b);
        let _dangling = g.and(a, b); // also shared with xor internals
        let _more = g.and(!a, !b);
        g.add_output(used, "y");
        let clean = g.cleanup();
        assert_eq!(clean.num_inputs(), 2);
        assert_eq!(clean.gate_count(), clean.and_count());
        for bits in [[false, false], [false, true], [true, false], [true, true]] {
            assert_eq!(clean.eval_bits(&bits), g.eval_bits(&bits));
        }
        assert_eq!(clean.input_names(), g.input_names());
        assert_eq!(clean.outputs()[0].1, "y");
    }

    #[test]
    fn output_truth_tables_match_eval() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.and(a, b);
        let f = g.or(ab, !c);
        g.add_output(f, "f");
        g.add_output(!f, "g");
        let tts = g.output_truth_tables().expect("3 inputs");
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            let ev = g.eval_bits(&bits);
            assert_eq!(tts[0].get(m), ev[0]);
            assert_eq!(tts[1].get(m), ev[1]);
        }
    }

    #[test]
    fn input_accessors() {
        let mut g = Aig::new();
        let a = g.add_input("alpha");
        assert_eq!(g.input_name(0), "alpha");
        assert_eq!(g.input_edge(0), a);
        assert_eq!(g.input_position(a.node()), Some(0));
        assert_eq!(g.input_position(NodeId::CONST), None);
        assert!(g.is_input(a.node()));
        assert!(!g.is_and(a.node()));
    }

    #[test]
    fn display_stats() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.and(a, b);
        g.add_output(y, "y");
        assert_eq!(g.to_string(), "aig: i=2 o=1 and=1");
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn depth_of_chain_and_tree() {
        let mut g = Aig::new();
        let x = g.add_inputs("x", 4);
        let mut acc = x[0];
        for &e in &x[1..] {
            acc = g.and(acc, e);
        }
        g.add_output(acc, "chain");
        assert_eq!(g.depth(), 3);
        let mut t = Aig::new();
        let x = t.add_inputs("x", 4);
        let l = t.and(x[0], x[1]);
        let r = t.and(x[2], x[3]);
        let y = t.and(l, r);
        t.add_output(y, "tree");
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn depth_of_wires_is_zero() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        g.add_output(!a, "na");
        g.add_output(Edge::TRUE, "one");
        assert_eq!(g.depth(), 0);
        let empty = Aig::new();
        assert_eq!(empty.depth(), 0);
    }
}
