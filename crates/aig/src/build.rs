//! Word-level circuit constructors.
//!
//! A *word* is a slice of edges in MSB-first order, matching the paper's
//! `N_v̄` convention (the first variable of a named bus is its most
//! significant bit). These builders are used by the synthetic benchmark
//! generators (DATA and DIAG circuit families) and by the learner when
//! it instantiates a matched comparator or linear-arithmetic template.
//!
//! All arithmetic is unsigned modulo `2^width` unless stated otherwise;
//! negative scale constants are handled in two's complement, which
//! coincides with the modular semantics.

use crate::{Aig, Edge};

impl Aig {
    /// Builds the constant word `value` over `width` bits, MSB first.
    pub fn const_word(&mut self, value: u64, width: usize) -> Vec<Edge> {
        (0..width)
            .rev()
            .map(|k| {
                if value >> k & 1 == 1 {
                    Edge::TRUE
                } else {
                    Edge::FALSE
                }
            })
            .collect()
    }

    /// Adds two words modulo `2^width` where `width` is the wider of the
    /// two; the narrower word is zero-extended. Returns an MSB-first word.
    pub fn add_word(&mut self, a: &[Edge], b: &[Edge]) -> Vec<Edge> {
        let width = a.len().max(b.len());
        let mut sum_lsb = Vec::with_capacity(width);
        let mut carry = Edge::FALSE;
        for k in 0..width {
            let x = bit_lsb(a, k);
            let y = bit_lsb(b, k);
            let xy = self.xor(x, y);
            let s = self.xor(xy, carry);
            // carry' = x&y | carry&(x^y)
            let g = self.and(x, y);
            let p = self.and(carry, xy);
            carry = self.or(g, p);
            sum_lsb.push(s);
        }
        sum_lsb.reverse();
        sum_lsb
    }

    /// Returns the two's-complement negation of a word.
    pub fn neg_word(&mut self, a: &[Edge]) -> Vec<Edge> {
        let inverted: Vec<Edge> = a.iter().map(|&e| !e).collect();
        let one = self.const_word(1, a.len());
        self.add_word(&inverted, &one)
    }

    /// Subtracts `b` from `a` modulo `2^width`.
    pub fn sub_word(&mut self, a: &[Edge], b: &[Edge]) -> Vec<Edge> {
        let width = a.len().max(b.len());
        let b_ext = zero_extend(b, width);
        let nb = self.neg_word(&b_ext);
        let a_ext = zero_extend(a, width);
        self.add_word(&a_ext, &nb)
    }

    /// Multiplies a word by a signed constant, producing a word of
    /// `width` bits (two's-complement wraparound).
    pub fn mul_const_word(&mut self, a: &[Edge], k: i64, width: usize) -> Vec<Edge> {
        let a = zero_extend(a, width);
        let mut acc = self.const_word(0, width);
        let mag = k.unsigned_abs();
        for bit in 0..64 {
            if mag >> bit & 1 == 1 {
                let shifted = shift_left(&a, bit as usize);
                acc = self.add_word(&acc, &shifted);
            }
        }
        if k < 0 {
            acc = self.neg_word(&acc);
        }
        acc
    }

    /// Builds the linear-arithmetic template
    /// `Σ scaleᵢ · wordᵢ + offset` over `width` bits — the paper's
    /// `N_z̄ = Σ aᵢ N_v̄ᵢ + b`.
    pub fn scale_sum(
        &mut self,
        terms: &[(i64, Vec<Edge>)],
        offset: i64,
        width: usize,
    ) -> Vec<Edge> {
        let mut acc = self.const_word(offset as u64 & mask(width), width);
        for (scale, word) in terms {
            let t = self.mul_const_word(word, *scale, width);
            acc = self.add_word(&acc, &t);
        }
        acc
    }

    /// Returns the single-bit `a == b` (words zero-extended to equal width).
    pub fn cmp_eq(&mut self, a: &[Edge], b: &[Edge]) -> Edge {
        let width = a.len().max(b.len());
        let bits: Vec<Edge> = (0..width)
            .map(|k| {
                let x = bit_lsb(a, k);
                let y = bit_lsb(b, k);
                self.xnor(x, y)
            })
            .collect();
        self.and_many(&bits)
    }

    /// Returns the single-bit `a != b`.
    pub fn cmp_ne(&mut self, a: &[Edge], b: &[Edge]) -> Edge {
        !self.cmp_eq(a, b)
    }

    /// Returns the single-bit unsigned `a < b`.
    pub fn cmp_ult(&mut self, a: &[Edge], b: &[Edge]) -> Edge {
        let width = a.len().max(b.len());
        // Accumulate from the LSB up: lt = (!x & y) | (x == y) & lt_lower
        let mut lt = Edge::FALSE;
        for k in 0..width {
            let x = bit_lsb(a, k);
            let y = bit_lsb(b, k);
            let here = self.and(!x, y);
            let eq = self.xnor(x, y);
            let chain = self.and(eq, lt);
            lt = self.or(here, chain);
        }
        lt
    }

    /// Returns the single-bit unsigned `a ≤ b`.
    pub fn cmp_ule(&mut self, a: &[Edge], b: &[Edge]) -> Edge {
        !self.cmp_ult(b, a)
    }

    /// Returns the single-bit unsigned `a > b`.
    pub fn cmp_ugt(&mut self, a: &[Edge], b: &[Edge]) -> Edge {
        self.cmp_ult(b, a)
    }

    /// Returns the single-bit unsigned `a ≥ b`.
    pub fn cmp_uge(&mut self, a: &[Edge], b: &[Edge]) -> Edge {
        !self.cmp_ult(a, b)
    }

    /// Returns `if sel then t else e` bitwise over two words of equal
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if the word widths differ.
    pub fn mux_word(&mut self, sel: Edge, t: &[Edge], e: &[Edge]) -> Vec<Edge> {
        assert_eq!(t.len(), e.len(), "mux_word operands must have equal width");
        t.iter()
            .zip(e)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }
}

/// Returns bit `k` (LSB-indexed) of an MSB-first word, `FALSE` beyond
/// the word's width.
fn bit_lsb(word: &[Edge], k: usize) -> Edge {
    if k < word.len() {
        word[word.len() - 1 - k]
    } else {
        Edge::FALSE
    }
}

fn zero_extend(word: &[Edge], width: usize) -> Vec<Edge> {
    let mut out = vec![Edge::FALSE; width.saturating_sub(word.len())];
    let keep = word.len().min(width);
    out.extend_from_slice(&word[word.len() - keep..]);
    out
}

fn shift_left(word: &[Edge], by: usize) -> Vec<Edge> {
    // MSB-first: shifting left drops high bits and appends zeros.
    let width = word.len();
    if by >= width {
        return vec![Edge::FALSE; width];
    }
    let mut out = word[by..].to_vec();
    out.extend(std::iter::repeat_n(Edge::FALSE, by));
    out
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        !0
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an AIG with two input words of the given widths and runs
    /// `check` on every input combination.
    fn exhaustive2(
        wa: usize,
        wb: usize,
        build: impl Fn(&mut Aig, &[Edge], &[Edge]) -> Vec<Edge>,
        expect: impl Fn(u64, u64) -> u64,
        out_width: usize,
    ) {
        let mut g = Aig::new();
        let a = g.add_inputs("a", wa);
        let b = g.add_inputs("b", wb);
        let out = build(&mut g, &a, &b);
        assert_eq!(out.len(), out_width);
        for (i, e) in out.iter().enumerate() {
            g.add_output(*e, format!("z{i}"));
        }
        for va in 0..1u64 << wa {
            for vb in 0..1u64 << wb {
                let mut bits = Vec::new();
                // inputs are MSB-first in creation order
                for k in (0..wa).rev() {
                    bits.push(va >> k & 1 == 1);
                }
                for k in (0..wb).rev() {
                    bits.push(vb >> k & 1 == 1);
                }
                let got: u64 = g
                    .eval_bits(&bits)
                    .iter()
                    .fold(0, |acc, &bit| acc << 1 | bit as u64);
                assert_eq!(got, expect(va, vb) & mask(out_width), "a={va} b={vb}");
            }
        }
    }

    #[test]
    fn const_word_bits() {
        let mut g = Aig::new();
        let w = g.const_word(0b1010, 4);
        assert_eq!(w, vec![Edge::TRUE, Edge::FALSE, Edge::TRUE, Edge::FALSE]);
        // Truncation beyond width keeps the low bits.
        let w = g.const_word(0b111_0001, 4);
        assert_eq!(w[3], Edge::TRUE);
        assert_eq!(w[0], Edge::FALSE);
    }

    #[test]
    fn adder_exhaustive() {
        exhaustive2(4, 4, |g, a, b| g.add_word(a, b), |x, y| x + y, 4);
    }

    #[test]
    fn adder_mixed_width() {
        exhaustive2(5, 3, |g, a, b| g.add_word(a, b), |x, y| x + y, 5);
    }

    #[test]
    fn subtractor_exhaustive() {
        exhaustive2(
            4,
            4,
            |g, a, b| g.sub_word(a, b),
            |x, y| x.wrapping_sub(y),
            4,
        );
    }

    #[test]
    fn negation() {
        let mut g = Aig::new();
        let a = g.add_inputs("a", 4);
        let n = g.neg_word(&a);
        for (i, e) in n.iter().enumerate() {
            g.add_output(*e, format!("z{i}"));
        }
        for va in 0..16u64 {
            let bits: Vec<bool> = (0..4).rev().map(|k| va >> k & 1 == 1).collect();
            let got: u64 = g
                .eval_bits(&bits)
                .iter()
                .fold(0, |acc, &b| acc << 1 | b as u64);
            assert_eq!(got, va.wrapping_neg() & 0xf);
        }
    }

    #[test]
    fn mul_const_positive_negative() {
        for k in [-5i64, -1, 0, 1, 3, 7] {
            let mut g = Aig::new();
            let a = g.add_inputs("a", 4);
            let m = g.mul_const_word(&a, k, 6);
            for (i, e) in m.iter().enumerate() {
                g.add_output(*e, format!("z{i}"));
            }
            for va in 0..16u64 {
                let bits: Vec<bool> = (0..4).rev().map(|j| va >> j & 1 == 1).collect();
                let got: u64 = g
                    .eval_bits(&bits)
                    .iter()
                    .fold(0, |acc, &b| acc << 1 | b as u64);
                let expect = (va as i64 * k) as u64 & 0x3f;
                assert_eq!(got, expect, "k={k} a={va}");
            }
        }
    }

    #[test]
    fn scale_sum_matches_arithmetic() {
        let mut g = Aig::new();
        let a = g.add_inputs("a", 3);
        let b = g.add_inputs("b", 3);
        let z = g.scale_sum(&[(3, a.clone()), (-2, b.clone())], 5, 8);
        for (i, e) in z.iter().enumerate() {
            g.add_output(*e, format!("z{i}"));
        }
        for va in 0..8i64 {
            for vb in 0..8i64 {
                let mut bits = Vec::new();
                for k in (0..3).rev() {
                    bits.push(va >> k & 1 == 1);
                }
                for k in (0..3).rev() {
                    bits.push(vb >> k & 1 == 1);
                }
                let got: u64 = g
                    .eval_bits(&bits)
                    .iter()
                    .fold(0, |acc, &b| acc << 1 | b as u64);
                let expect = (3 * va - 2 * vb + 5) as u64 & 0xff;
                assert_eq!(got, expect, "a={va} b={vb}");
            }
        }
    }

    #[test]
    fn comparators_exhaustive() {
        type CmpFn = fn(&mut Aig, &[Edge], &[Edge]) -> Edge;
        type CmpCase = (CmpFn, fn(u64, u64) -> bool);
        let cases: Vec<CmpCase> = vec![
            (Aig::cmp_eq, |x, y| x == y),
            (Aig::cmp_ne, |x, y| x != y),
            (Aig::cmp_ult, |x, y| x < y),
            (Aig::cmp_ule, |x, y| x <= y),
            (Aig::cmp_ugt, |x, y| x > y),
            (Aig::cmp_uge, |x, y| x >= y),
        ];
        for (build, model) in cases {
            exhaustive2(
                3,
                4,
                |g, a, b| vec![build(g, a, b)],
                move |x, y| model(x, y) as u64,
                1,
            );
        }
    }

    #[test]
    fn mux_word_selects() {
        let mut g = Aig::new();
        let s = g.add_input("s");
        let t = g.add_inputs("t", 2);
        let e = g.add_inputs("e", 2);
        let m = g.mux_word(s, &t, &e);
        for (i, edge) in m.iter().enumerate() {
            g.add_output(*edge, format!("z{i}"));
        }
        // s=1 selects t; s=0 selects e.
        assert_eq!(
            g.eval_bits(&[true, true, false, false, true]),
            vec![true, false]
        );
        assert_eq!(
            g.eval_bits(&[false, true, false, false, true]),
            vec![false, true]
        );
    }

    #[test]
    fn cmp_against_constant() {
        let mut g = Aig::new();
        let a = g.add_inputs("a", 4);
        let c = g.const_word(9, 4);
        let ge = g.cmp_uge(&a, &c);
        g.add_output(ge, "ge9");
        for va in 0..16u64 {
            let bits: Vec<bool> = (0..4).rev().map(|k| va >> k & 1 == 1).collect();
            assert_eq!(g.eval_bits(&bits), vec![va >= 9], "a={va}");
        }
    }
}
