//! ASCII AIGER import.

use std::fmt;

use crate::{Aig, Edge};

/// Errors from parsing an ASCII AIGER (`aag`) file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseAigerError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file declares latches, which combinational AIGs do not have.
    LatchesUnsupported,
    /// A literal or count failed to parse as an integer.
    BadNumber(String),
    /// An input literal is complemented or out of sequence.
    BadInput(String),
    /// An AND definition is out of order or refers to later nodes.
    BadAnd(String),
    /// The file ended before all declared sections were read.
    UnexpectedEof,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::BadHeader(l) => write!(f, "malformed aag header: {l}"),
            ParseAigerError::LatchesUnsupported => {
                f.write_str("sequential aiger files (latches) are not supported")
            }
            ParseAigerError::BadNumber(t) => write!(f, "not a number: {t}"),
            ParseAigerError::BadInput(l) => write!(f, "malformed input line: {l}"),
            ParseAigerError::BadAnd(l) => write!(f, "malformed and line: {l}"),
            ParseAigerError::UnexpectedEof => f.write_str("unexpected end of file"),
        }
    }
}

impl std::error::Error for ParseAigerError {}

impl Aig {
    /// Parses an ASCII AIGER (`aag`) file as produced by
    /// [`Aig::to_aiger_ascii`].
    ///
    /// Only combinational files are accepted (no latches). Node ids are
    /// required in the canonical order: inputs `1..=I`, ANDs following
    /// with fanins referring to earlier nodes — the format emitted by
    /// this crate and by most tools after reencoding. Symbol-table
    /// entries (`iN`, `oN`) become port names; missing names default to
    /// `iN` / `oN`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseAigerError`] describing the first problem found.
    ///
    /// # Examples
    ///
    /// ```
    /// use cirlearn_aig::Aig;
    ///
    /// # fn main() -> Result<(), cirlearn_aig::ParseAigerError> {
    /// let mut g = Aig::new();
    /// let a = g.add_input("a");
    /// let b = g.add_input("b");
    /// let y = g.xor(a, b);
    /// g.add_output(y, "y");
    /// let text = g.to_aiger_ascii();
    /// let back = Aig::from_aiger_ascii(&text)?;
    /// assert_eq!(back.num_inputs(), 2);
    /// assert_eq!(back.eval_bits(&[true, false]), vec![true]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_aiger_ascii(text: &str) -> Result<Aig, ParseAigerError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(ParseAigerError::UnexpectedEof)?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() != 6 || fields[0] != "aag" {
            return Err(ParseAigerError::BadHeader(header.to_owned()));
        }
        let parse = |t: &str| -> Result<usize, ParseAigerError> {
            t.parse()
                .map_err(|_| ParseAigerError::BadNumber(t.to_owned()))
        };
        let _max_var = parse(fields[1])?;
        let num_inputs = parse(fields[2])?;
        let num_latches = parse(fields[3])?;
        let num_outputs = parse(fields[4])?;
        let num_ands = parse(fields[5])?;
        if num_latches != 0 {
            return Err(ParseAigerError::LatchesUnsupported);
        }

        let mut aig = Aig::new();
        let mut input_names: Vec<String> = (0..num_inputs).map(|k| format!("i{k}")).collect();
        let mut output_names: Vec<String> = (0..num_outputs).map(|k| format!("o{k}")).collect();

        // Inputs: literal 2*(k+1), positive.
        for k in 0..num_inputs {
            let line = lines.next().ok_or(ParseAigerError::UnexpectedEof)?;
            let lit = parse(line.trim())?;
            if lit != 2 * (k + 1) {
                return Err(ParseAigerError::BadInput(line.to_owned()));
            }
        }
        // Output literals, resolved after the ANDs are built.
        let mut output_lits = Vec::with_capacity(num_outputs);
        for _ in 0..num_outputs {
            let line = lines.next().ok_or(ParseAigerError::UnexpectedEof)?;
            output_lits.push(parse(line.trim())? as u32);
        }
        // ANDs in topological order.
        let mut next_id = num_inputs as u32 + 1;
        // Add inputs now that we know the count (names patched later).
        let mut aig_inputs = Vec::with_capacity(num_inputs);
        for k in 0..num_inputs {
            aig_inputs.push(aig.add_input(format!("i{k}")));
        }
        for _ in 0..num_ands {
            let line = lines.next().ok_or(ParseAigerError::UnexpectedEof)?;
            let nums: Vec<&str> = line.split_whitespace().collect();
            if nums.len() != 3 {
                return Err(ParseAigerError::BadAnd(line.to_owned()));
            }
            let lhs = parse(nums[0])? as u32;
            let f0 = parse(nums[1])? as u32;
            let f1 = parse(nums[2])? as u32;
            if lhs != next_id * 2 || f0 >= lhs || f1 >= lhs {
                return Err(ParseAigerError::BadAnd(line.to_owned()));
            }
            let a = Edge::from_code(f0);
            let b = Edge::from_code(f1);
            let built = aig.and(a, b);
            // Structural hashing or constant folding may compress the
            // node away; keep ids aligned by remembering the mapping.
            // For canonical files produced by this crate this never
            // fires, but foreign files may contain foldable ANDs.
            if built.node().index() as u32 != next_id {
                // Remap: record an alias from the declared id to the
                // folded edge by retro-patching output literals later.
                // Simplest robust approach: rebuild without hashing is
                // not available, so reject such files for now.
                return Err(ParseAigerError::BadAnd(format!(
                    "{line} (node folds to {built}; reencode the file)"
                )));
            }
            next_id += 1;
        }
        // Symbol table and comments.
        for line in lines {
            if let Some(rest) = line.strip_prefix('i') {
                if let Some((idx, name)) = rest.split_once(' ') {
                    if let Ok(k) = idx.parse::<usize>() {
                        if k < input_names.len() {
                            input_names[k] = name.to_owned();
                        }
                    }
                }
            } else if let Some(rest) = line.strip_prefix('o') {
                if let Some((idx, name)) = rest.split_once(' ') {
                    if let Ok(k) = idx.parse::<usize>() {
                        if k < output_names.len() {
                            output_names[k] = name.to_owned();
                        }
                    }
                }
            } else if line.starts_with('c') {
                break;
            }
        }

        for (k, lit) in output_lits.into_iter().enumerate() {
            aig.add_output(Edge::from_code(lit), output_names[k].clone());
        }
        // Patch input names via a rename pass (names are stored in
        // creation order).
        aig.rename_inputs(&input_names);
        Ok(aig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("alpha");
        let b = g.add_input("beta");
        let c = g.add_input("gamma");
        let t = g.xor(a, b);
        let y = g.mux(c, t, !a);
        g.add_output(y, "out0");
        g.add_output(!t, "out1");
        g
    }

    #[test]
    fn roundtrip_preserves_function_and_names() {
        let g = sample();
        let text = g.to_aiger_ascii();
        let back = Aig::from_aiger_ascii(&text).expect("own output parses");
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), 2);
        assert_eq!(back.input_names(), g.input_names());
        assert_eq!(back.outputs()[0].1, "out0");
        for m in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(back.eval_bits(&bits), g.eval_bits(&bits), "m={m}");
        }
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(
            Aig::from_aiger_ascii(text),
            Err(ParseAigerError::LatchesUnsupported)
        ));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            Aig::from_aiger_ascii("not an aiger file"),
            Err(ParseAigerError::BadHeader(_))
        ));
        assert!(matches!(
            Aig::from_aiger_ascii(""),
            Err(ParseAigerError::UnexpectedEof)
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let text = "aag 3 2 0 1 1\n2\n4\n6\n"; // missing the and line
        assert!(matches!(
            Aig::from_aiger_ascii(text),
            Err(ParseAigerError::UnexpectedEof)
        ));
    }

    #[test]
    fn constant_outputs_parse() {
        let text = "aag 1 1 0 2 0\n2\n0\n1\ni0 x\no0 zero\no1 one\n";
        let g = Aig::from_aiger_ascii(text).expect("valid");
        assert_eq!(g.eval_bits(&[true]), vec![false, true]);
        assert_eq!(g.outputs()[1].1, "one");
    }

    #[test]
    fn default_names_when_symbols_missing() {
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let g = Aig::from_aiger_ascii(text).expect("valid");
        assert_eq!(g.input_name(0), "i0");
        assert_eq!(g.outputs()[0].1, "o0");
        assert_eq!(g.eval_bits(&[true, true]), vec![true]);
    }
}
