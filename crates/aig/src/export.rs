//! Text exports: Graphviz DOT and ASCII AIGER.

use std::fmt::Write as _;

use crate::Aig;

impl Aig {
    /// Renders the graph in Graphviz DOT format.
    ///
    /// Inverted edges are drawn dashed; primary inputs are boxes labelled
    /// with their names; outputs are double circles.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph aig {\n  rankdir=BT;\n");
        for pos in 0..self.num_inputs() {
            let node = self.input_edge(pos).node();
            let _ = writeln!(
                s,
                "  n{} [shape=box, label=\"{}\"];",
                node.index(),
                self.input_name(pos)
            );
        }
        for (n, a, b) in self.ands() {
            let _ = writeln!(s, "  n{} [shape=ellipse, label=\"and\"];", n.index());
            for fanin in [a, b] {
                let style = if fanin.is_complemented() {
                    " [style=dashed]"
                } else {
                    ""
                };
                let _ = writeln!(s, "  n{} -> n{}{};", fanin.node().index(), n.index(), style);
            }
        }
        for (i, (e, name)) in self.outputs().iter().enumerate() {
            let _ = writeln!(s, "  o{i} [shape=doublecircle, label=\"{name}\"];");
            let style = if e.is_complemented() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(s, "  n{} -> o{i}{};", e.node().index(), style);
        }
        s.push_str("}\n");
        s
    }

    /// Renders the graph as structural gate-level Verilog, one
    /// `assign` per AND node (inverters folded into the expressions).
    ///
    /// Port names are sanitized to Verilog identifiers by replacing
    /// non-alphanumeric characters with `_` and suffixing the port
    /// position to keep them unique.
    pub fn to_verilog(&self, module_name: &str) -> String {
        let sanitize = |name: &str, idx: usize, prefix: &str| -> String {
            let body: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            format!("{prefix}{idx}_{body}")
        };
        let in_names: Vec<String> = (0..self.num_inputs())
            .map(|k| sanitize(self.input_name(k), k, "pi"))
            .collect();
        let out_names: Vec<String> = self
            .outputs()
            .iter()
            .enumerate()
            .map(|(k, (_, n))| sanitize(n, k, "po"))
            .collect();
        let mut s = format!("module {module_name} (\n");
        for n in &in_names {
            let _ = writeln!(s, "  input  wire {n},");
        }
        for (k, n) in out_names.iter().enumerate() {
            let sep = if k + 1 == out_names.len() { "" } else { "," };
            let _ = writeln!(s, "  output wire {n}{sep}");
        }
        s.push_str(");\n");
        let edge_expr = |e: crate::Edge| -> String {
            let base = if e.node() == crate::NodeId::CONST {
                "1'b0".to_owned()
            } else if let Some(pos) = self.input_position(e.node()) {
                in_names[pos].clone()
            } else {
                format!("n{}", e.node().index())
            };
            if e.is_complemented() {
                if base == "1'b0" {
                    "1'b1".to_owned()
                } else {
                    format!("~{base}")
                }
            } else {
                base
            }
        };
        for (n, a, b) in self.ands() {
            let _ = writeln!(
                s,
                "  wire n{} = {} & {};",
                n.index(),
                edge_expr(a),
                edge_expr(b)
            );
        }
        for (k, (e, _)) in self.outputs().iter().enumerate() {
            let _ = writeln!(s, "  assign {} = {};", out_names[k], edge_expr(*e));
        }
        s.push_str("endmodule\n");
        s
    }

    /// Renders the graph in the ASCII AIGER (`aag`) format.
    ///
    /// Node `k` maps to AIGER variable `k`, so literals are exactly the
    /// internal edge codes. Input and output symbol tables are emitted.
    pub fn to_aiger_ascii(&self) -> String {
        let max_var = self.node_count() - 1;
        let mut s = format!(
            "aag {} {} 0 {} {}\n",
            max_var,
            self.num_inputs(),
            self.num_outputs(),
            self.and_count()
        );
        for pos in 0..self.num_inputs() {
            let _ = writeln!(s, "{}", self.input_edge(pos).code());
        }
        for (e, _) in self.outputs() {
            let _ = writeln!(s, "{}", e.code());
        }
        for (n, a, b) in self.ands() {
            let _ = writeln!(s, "{} {} {}", n.index() * 2, a.code(), b.code());
        }
        for pos in 0..self.num_inputs() {
            let _ = writeln!(s, "i{pos} {}", self.input_name(pos));
        }
        for (i, (_, name)) in self.outputs().iter().enumerate() {
            let _ = writeln!(s, "o{i} {name}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.and(a, !b);
        g.add_output(!y, "y");
        g
    }

    #[test]
    fn dot_contains_nodes_and_styles() {
        let dot = tiny().to_dot();
        assert!(dot.starts_with("digraph aig {"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"y\""));
        assert!(dot.contains("[style=dashed]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn verilog_export_structure() {
        let v = tiny().to_verilog("tiny");
        assert!(v.starts_with("module tiny ("));
        assert!(v.contains("input  wire pi0_a,"));
        assert!(v.contains("output wire po0_y"));
        assert!(v.contains("wire n3 = pi0_a & ~pi1_b;"));
        assert!(v.contains("assign po0_y = ~n3;"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn verilog_sanitizes_bus_names() {
        let mut g = Aig::new();
        let a = g.add_input("data[3]");
        g.add_output(!a, "q<0>");
        let v = g.to_verilog("m");
        assert!(v.contains("pi0_data_3_"), "{v}");
        assert!(v.contains("po0_q_0_"), "{v}");
        assert!(v.contains("assign po0_q_0_ = ~pi0_data_3_;"), "{v}");
    }

    #[test]
    fn verilog_constant_output() {
        let mut g = Aig::new();
        let _ = g.add_input("a");
        g.add_output(crate::Edge::TRUE, "one");
        let v = g.to_verilog("m");
        assert!(v.contains("assign po0_one = 1'b1;"), "{v}");
    }

    #[test]
    fn aiger_header_and_body() {
        let aag = tiny().to_aiger_ascii();
        let mut lines = aag.lines();
        assert_eq!(lines.next(), Some("aag 3 2 0 1 1"));
        assert_eq!(lines.next(), Some("2")); // input a
        assert_eq!(lines.next(), Some("4")); // input b
        assert_eq!(lines.next(), Some("7")); // output !n3
        assert_eq!(lines.next(), Some("6 2 5")); // and node: a & !b
        assert_eq!(lines.next(), Some("i0 a"));
        assert_eq!(lines.next(), Some("i1 b"));
        assert_eq!(lines.next(), Some("o0 y"));
    }
}
