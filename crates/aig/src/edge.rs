//! Node identifiers and complemented edges.

use std::fmt;

/// Identifier of a node in an [`Aig`](crate::Aig).
///
/// Node 0 is always the constant-false node; nodes `1..=num_inputs` are
/// the primary inputs in creation order; higher ids are AND nodes in
/// topological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-false node present in every AIG.
    pub const CONST: NodeId = NodeId(0);

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from its dense index (the inverse of
    /// [`NodeId::index`]). The id is not checked against any particular
    /// graph.
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A reference to a node with an optional complement (inverter) bit,
/// encoded as `2 * node + complemented` (the AIGER convention).
///
/// # Examples
///
/// ```
/// use cirlearn_aig::{Aig, Edge};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// assert_eq!((!a).node(), a.node());
/// assert!((!a).is_complemented());
/// assert_eq!(!!a, a);
/// assert_eq!(Edge::FALSE, !Edge::TRUE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge(pub(crate) u32);

impl Edge {
    /// The constant-false edge.
    pub const FALSE: Edge = Edge(0);
    /// The constant-true edge.
    pub const TRUE: Edge = Edge(1);

    /// Creates an edge to `node`, complemented if `complement` is set.
    pub const fn new(node: NodeId, complement: bool) -> Self {
        Edge(node.0 * 2 + complement as u32)
    }

    /// Reconstructs an edge from its `2 * node + complement` code.
    pub const fn from_code(code: u32) -> Self {
        Edge(code)
    }

    /// Returns the `2 * node + complement` code.
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Returns the node this edge points to.
    pub const fn node(self) -> NodeId {
        NodeId(self.0 / 2)
    }

    /// Returns `true` if this edge carries an inverter.
    pub const fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns this edge with the complement bit cleared.
    #[must_use]
    pub const fn regular(self) -> Self {
        Edge(self.0 & !1)
    }

    /// Returns `true` if this edge is one of the two constants.
    pub const fn is_const(self) -> bool {
        self.0 < 2
    }

    /// Returns the constant value if this edge is constant.
    pub const fn const_value(self) -> Option<bool> {
        match self.0 {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Applies an extra complement if `complement` is set.
    #[must_use]
    pub const fn complement_if(self, complement: bool) -> Self {
        Edge(self.0 ^ complement as u32)
    }
}

impl std::ops::Not for Edge {
    type Output = Edge;

    fn not(self) -> Edge {
        Edge(self.0 ^ 1)
    }
}

impl From<NodeId> for Edge {
    fn from(node: NodeId) -> Self {
        Edge::new(node, false)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!{}", self.node())
        } else {
            write!(f, "{}", self.node())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert!(Edge::FALSE.is_const());
        assert!(Edge::TRUE.is_const());
        assert_eq!(Edge::FALSE.const_value(), Some(false));
        assert_eq!(Edge::TRUE.const_value(), Some(true));
        assert_eq!(!Edge::FALSE, Edge::TRUE);
        assert_eq!(Edge::FALSE.node(), NodeId::CONST);
        assert_eq!(Edge::TRUE.node(), NodeId::CONST);
    }

    #[test]
    fn complement_roundtrip() {
        let e = Edge::new(NodeId(7), false);
        assert!(!e.is_complemented());
        assert!((!e).is_complemented());
        assert_eq!(!!e, e);
        assert_eq!((!e).regular(), e);
        assert_eq!(e.complement_if(true), !e);
        assert_eq!(e.complement_if(false), e);
    }

    #[test]
    fn code_roundtrip() {
        let e = Edge::new(NodeId(5), true);
        assert_eq!(e.code(), 11);
        assert_eq!(Edge::from_code(11), e);
    }

    #[test]
    fn non_const_edge() {
        let e = Edge::new(NodeId(3), true);
        assert!(!e.is_const());
        assert_eq!(e.const_value(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Edge::new(NodeId(4), true).to_string(), "!n4");
        assert_eq!(Edge::new(NodeId(4), false).to_string(), "n4");
    }
}
