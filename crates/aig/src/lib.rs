//! And-inverter graphs (AIGs) for the `cirlearn` toolkit.
//!
//! An AIG represents a multi-output Boolean circuit with two-input AND
//! nodes and complemented edges. It is the circuit representation used
//! throughout the workspace:
//!
//! * the black-box oracle substrate evaluates hidden AIGs,
//! * the learner emits its result as an AIG built from an SOP,
//! * the optimization passes of `cirlearn-synth` transform AIGs,
//! * the SAT crate checks AIG equivalence.
//!
//! The main type is [`Aig`]. Edges ([`Edge`]) carry an optional
//! complement bit, so inverters are free; the *gate count* reported by
//! [`Aig::gate_count`] is the number of AND nodes, matching the
//! contest's 2-input primitive-gate metric up to polarity absorption.
//!
//! The [`build`] module offers word-level constructors (adders,
//! comparators, scaled sums, muxes) used both by the synthetic benchmark
//! generators and by the learner's template instantiation.
//!
//! # Examples
//!
//! ```
//! use cirlearn_aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let xor = aig.xor(a, b);
//! aig.add_output(xor, "y");
//! assert_eq!(aig.gate_count(), 3); // xor = 3 ANDs
//!
//! let out = aig.eval_bits(&[true, false]);
//! assert_eq!(out, vec![true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
mod edge;
mod export;
mod graph;
mod import;
mod sim;
mod support;

pub use edge::{Edge, NodeId};
pub use graph::Aig;
pub use import::ParseAigerError;
