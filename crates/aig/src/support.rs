//! Structural support and cone extraction.

use crate::{Aig, Edge, NodeId};

impl Aig {
    /// Returns the primary-input positions in the structural support of
    /// `edge` (inputs reachable backward from it), sorted ascending.
    ///
    /// The structural support over-approximates the functional support:
    /// an input may be reachable yet not affect the function.
    pub fn structural_support(&self, edge: Edge) -> Vec<usize> {
        let mut mark = vec![false; self.node_count()];
        let mut stack = vec![edge.node()];
        let mut support = Vec::new();
        while let Some(n) = stack.pop() {
            if mark[n.index()] {
                continue;
            }
            mark[n.index()] = true;
            if let Some(pos) = self.input_position(n) {
                support.push(pos);
            } else if self.is_and(n) {
                let [a, b] = self.fanins(n);
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        support.sort_unstable();
        support
    }

    /// Returns the structural support of the `position`-th output.
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ num_outputs`.
    pub fn output_support(&self, position: usize) -> Vec<usize> {
        self.structural_support(self.output_edge(position))
    }

    /// Extracts the logic cone of `edge` as a standalone single-output
    /// AIG whose primary inputs are exactly the cone's structural
    /// support, in ascending input-position order.
    ///
    /// Returns the cone and the original input positions of its inputs.
    /// The cone's output is named `cone`.
    pub fn extract_cone(&self, edge: Edge) -> (Aig, Vec<usize>) {
        let support = self.structural_support(edge);
        let mut cone = Aig::new();
        let mut map: Vec<Option<Edge>> = vec![None; self.node_count()];
        map[NodeId::CONST.index()] = Some(Edge::FALSE);
        for &pos in &support {
            let e = cone.add_input(self.input_name(pos).to_owned());
            map[self.input_edge(pos).node().index()] = Some(e);
        }
        for (n, a, b) in self.ands() {
            // Only rebuild nodes inside the cone: both fanins mapped.
            let (ma, mb) = (map[a.node().index()], map[b.node().index()]);
            if let (Some(ma), Some(mb)) = (ma, mb) {
                let na = ma.complement_if(a.is_complemented());
                let nb = mb.complement_if(b.is_complemented());
                map[n.index()] = Some(cone.and(na, nb));
            }
        }
        let root = map[edge.node().index()]
            .expect("cone root must be mapped")
            .complement_if(edge.is_complemented());
        cone.add_output(root, "cone");
        (cone.cleanup(), support)
    }
}

impl Aig {
    /// Rebuilds the circuit with primary input `position` replaced by
    /// an arbitrary function of the *other* inputs, supplied by
    /// `build_replacement` on the new graph (which has the same input
    /// set; the replaced input remains present but disconnected).
    ///
    /// This is functional composition `F(x₀, …, g(·), …)` — useful for
    /// case-splitting, re-substituting a delegate input with its
    /// comparator subcircuit, or injecting stuck-at faults in tests.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    #[must_use]
    pub fn substitute_input(
        &self,
        position: usize,
        build_replacement: impl FnOnce(&mut Aig) -> Edge,
    ) -> Aig {
        assert!(
            position < self.num_inputs(),
            "input {position} out of range"
        );
        let mut out = Aig::with_inputs_like(self);
        let replacement = build_replacement(&mut out);
        let mut map: Vec<Edge> = vec![Edge::FALSE; self.node_count()];
        for (i, m) in map.iter_mut().enumerate().take(self.num_inputs() + 1) {
            *m = Edge::from_code(i as u32 * 2);
        }
        map[self.input_edge(position).node().index()] = replacement;
        for (n, a, b) in self.ands() {
            let na = map[a.node().index()].complement_if(a.is_complemented());
            let nb = map[b.node().index()].complement_if(b.is_complemented());
            map[n.index()] = out.and(na, nb);
        }
        for (e, name) in self.outputs() {
            let ne = map[e.node().index()].complement_if(e.is_complemented());
            out.add_output(ne, name.clone());
        }
        out.cleanup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_of_input_and_constant() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let _b = g.add_input("b");
        assert_eq!(g.structural_support(a), vec![0]);
        assert_eq!(g.structural_support(Edge::TRUE), Vec::<usize>::new());
    }

    #[test]
    fn support_ignores_unreachable_inputs() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let _b = g.add_input("b");
        let c = g.add_input("c");
        let f = g.and(a, c);
        g.add_output(f, "f");
        assert_eq!(g.output_support(0), vec![0, 2]);
    }

    #[test]
    fn extract_cone_preserves_function() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let _unused = g.add_input("u");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let ab = g.xor(a, b);
        let f = g.mux(c, ab, a);
        let other = g.and(a, b);
        g.add_output(other, "other");
        g.add_output(!f, "f");

        let (cone, support) = g.extract_cone(!f);
        assert_eq!(support, vec![0, 2, 3]);
        assert_eq!(cone.num_inputs(), 3);
        assert_eq!(
            cone.input_names(),
            &["a".to_owned(), "b".into(), "c".into()]
        );
        for m in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| m >> i & 1 == 1).collect();
            let full = g.eval_bits(&bits)[1];
            let cone_bits = [bits[0], bits[2], bits[3]];
            assert_eq!(cone.eval_bits(&cone_bits), vec![full], "m={m}");
        }
    }

    #[test]
    fn extract_cone_of_constant() {
        let mut g = Aig::new();
        let _a = g.add_input("a");
        let (cone, support) = g.extract_cone(Edge::TRUE);
        assert!(support.is_empty());
        assert_eq!(cone.num_inputs(), 0);
        assert_eq!(cone.eval_bits(&[]), vec![true]);
    }

    #[test]
    fn cone_is_compact() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.and(a, b);
        let _dangling = g.or(a, b);
        g.add_output(f, "f");
        let (cone, _) = g.extract_cone(f);
        assert_eq!(cone.and_count(), 1);
    }
}

#[cfg(test)]
mod substitute_tests {
    use super::*;

    #[test]
    fn substitution_composes_functions() {
        // F = x0 XOR x1; substitute x0 := x1 & x2, giving (x1&x2) XOR x1.
        let mut g = Aig::new();
        let a = g.add_input("x0");
        let b = g.add_input("x1");
        let _c = g.add_input("x2");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        let composed = g.substitute_input(0, |out| {
            let b = out.input_edge(1);
            let c = out.input_edge(2);
            out.and(b, c)
        });
        for m in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|k| m >> k & 1 == 1).collect();
            let expect = (bits[1] && bits[2]) != bits[1];
            assert_eq!(composed.eval_bits(&bits), vec![expect], "m={m}");
        }
    }

    #[test]
    fn substitution_with_constant_is_a_cofactor() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.mux(a, b, !b);
        g.add_output(y, "y");
        let pos = g.substitute_input(0, |_| Edge::TRUE);
        let neg = g.substitute_input(0, |_| Edge::FALSE);
        for m in 0..4u32 {
            let bits: Vec<bool> = (0..2).map(|k| m >> k & 1 == 1).collect();
            assert_eq!(pos.eval_bits(&bits)[0], bits[1]);
            assert_eq!(neg.eval_bits(&bits)[0], !bits[1]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_position_panics() {
        let mut g = Aig::new();
        let _ = g.add_input("a");
        let _ = g.substitute_input(1, |_| Edge::TRUE);
    }
}
