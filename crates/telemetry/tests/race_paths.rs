//! Running the happens-before race detector over the telemetry hot
//! paths on real threads.
//!
//! Built only under `RUSTFLAGS="--cfg race"`: the crate's `sync` alias
//! then routes every mutex and atomic through `vendor/tsan`'s
//! instrumented wrappers, which ride vector clocks alongside the real
//! full-speed operations. Threads are spawned with `tsan::thread` so
//! fork/join edges are recorded; inside, the code under test is the
//! unmodified production path — `TraceLocal` drain-on-drop,
//! `LocalRecorder` drop-merge, and direct `Histogram` record/snapshot
//! traffic. A detected race panics with both conflicting stacks, which
//! these tests would surface as a failed `join`.
//!
//! The final test seeds a genuine race through a `RacyCell` to prove
//! the harness is live — that the clean runs above are clean because
//! the paths synchronize, not because the detector is asleep.

#![cfg(race)]

use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{histograms, Histogram, Telemetry, TraceWriter};
use tsan::RacyCell;

use std::sync::Arc;

#[test]
fn local_recorder_drop_merges_are_race_free() {
    let t = Telemetry::recording();
    let workers: Vec<_> = (0..4)
        .map(|k| {
            let recorder = t.local_recorder(histograms::FBDT_NODE_NS);
            tsan::thread::spawn(move || {
                for i in 0..100 {
                    recorder.record(1 + k * 100 + i);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("no race on the drop-merge path");
    }
    let report = t.report();
    let h = &report.histograms[histograms::FBDT_NODE_NS];
    assert_eq!(h.count, 400);
    assert_eq!(h.min, 1);
    assert_eq!(h.max, 400);
}

#[test]
fn direct_histogram_records_and_snapshots_are_race_free() {
    let h = Arc::new(Histogram::new());
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let h = Arc::clone(&h);
            tsan::thread::spawn(move || {
                for i in 1..=200u64 {
                    h.record(i);
                }
            })
        })
        .collect();
    let reader = {
        let h = Arc::clone(&h);
        tsan::thread::spawn(move || {
            for _ in 0..50 {
                let s = h.summary();
                assert!(s.count <= 400);
                if s.count > 0 {
                    assert!(s.min >= 1, "min sentinel leaked: {}", s.min);
                    assert!(s.min <= s.max);
                }
            }
        })
    };
    for w in writers {
        w.join().expect("no race on the record path");
    }
    reader.join().expect("no race on the snapshot path");
    assert_eq!(h.count(), 400);
    assert_eq!(h.sum(), 2 * (1..=200u64).sum::<u64>());
}

#[test]
fn trace_local_drains_are_race_free() {
    let (trace, sink) = TraceWriter::to_shared_buffer();
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let local = trace.local("learn/fbdt");
            let rescue = trace.clone();
            tsan::thread::spawn(move || {
                for depth in 0..20u64 {
                    local.emit("node", &[("depth", Json::from(depth))]);
                }
                // Exercise the rescue path concurrently with the other
                // workers' emits and drops.
                rescue.flush();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("no race on the drain path");
    }
    trace.flush();
    assert_eq!(trace.lines(), 60, "no line lost or drained twice");
    let text = sink.take_string();
    let mut tids = std::collections::BTreeSet::new();
    for line in text.lines() {
        let parsed = Json::parse(line).expect("drained lines stay valid JSON");
        tids.insert(parsed.get("tid").and_then(Json::as_u64).expect("tid"));
    }
    assert_eq!(tids.len(), 3, "one tid per emitting thread");
}

#[test]
fn flight_ring_appends_and_snapshots_are_race_free() {
    // The flight recorder's dump path: worker threads append into
    // their per-thread rings at full speed while a dumper snapshots
    // them. All cross-thread traffic rides the seqlock's atomics, so
    // the detector must stay quiet — and every snapshot it takes must
    // still be whole lines.
    let recorder = cirlearn_telemetry::FlightRecorder::new(256);
    let writers: Vec<_> = (0..3)
        .map(|k| {
            let recorder = recorder.clone();
            tsan::thread::spawn(move || {
                for i in 0..200u64 {
                    recorder.record_line(&format!(
                        "{{\"t_us\":{i},\"kind\":\"node\",\"stage\":\"w{k}\",\"tid\":0}}\n"
                    ));
                }
            })
        })
        .collect();
    let dumper = {
        let recorder = recorder.clone();
        tsan::thread::spawn(move || {
            for _ in 0..50 {
                for (_, text) in recorder.snapshot_lines() {
                    for line in text.lines() {
                        Json::parse(line).expect("snapshot lines are never torn");
                    }
                }
            }
        })
    };
    for w in writers {
        w.join().expect("no race on the append path");
    }
    dumper.join().expect("no race on the snapshot path");
    let rings = recorder.snapshot_lines();
    assert_eq!(rings.len(), 3, "one ring per appending thread");
}

#[test]
fn the_detector_is_live_on_this_configuration() {
    // A seeded race: two sibling threads write a RacyCell with no
    // synchronization between them. Fork edges order each against the
    // parent, not against each other, so the second write must be
    // flagged. If this test fails, the clean results above are
    // meaningless.
    let cell = Arc::new(RacyCell::new(0u64));
    let (c1, c2) = (Arc::clone(&cell), Arc::clone(&cell));
    let t1 = tsan::thread::spawn(move || c1.write(|v| *v += 1));
    let t2 = tsan::thread::spawn(move || c2.write(|v| *v += 1));
    let r1 = t1.join();
    let r2 = t2.join();
    assert!(
        r1.is_err() || r2.is_err(),
        "seeded unsynchronized writes were not detected"
    );
}
