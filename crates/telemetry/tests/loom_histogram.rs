//! Model checking the lock-free histogram with the weak-memory loom shim.
//!
//! Built only under `RUSTFLAGS="--cfg loom"`: the crate's `sync` alias then
//! routes every atomic through the model checker, so each test runs the
//! *exact production code path* — `RawHistogram` is the same generic the
//! `Histogram` alias instantiates — with every atomic op a scheduling point
//! and every load a value branch point. The checker exhaustively explores
//! the interleavings (up to the preemption bound) *and* the stale-read
//! behaviors the orderings permit for concurrent `record`, `merge` and
//! snapshot calls.
//!
//! The publication discipline these tests pin down: writers update
//! min/max/buckets/sum with relaxed RMWs and publish them with a Release
//! `count` increment; readers gate on an Acquire `count` load first, so no
//! reader ever observes the empty histogram's `u64::MAX` min sentinel.

#![cfg(loom)]

use cirlearn_telemetry::histogram::RawHistogram;
use loom::sync::Arc;

/// A histogram small enough for exhaustive interleaving exploration; values
/// past bucket 3 clamp into it, which none of these statistics depend on.
type ModelHistogram = RawHistogram<4>;

#[test]
fn concurrent_records_lose_nothing() {
    loom::model(|| {
        let h = Arc::new(ModelHistogram::new());
        let h2 = Arc::clone(&h);
        let t = loom::thread::spawn(move || {
            h2.record(3);
        });
        h.record(9);
        t.join().unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 12);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 9);
    });
}

#[test]
fn reader_never_observes_the_min_sentinel() {
    // The PR-5 bugfix: with the old update order (count before min) a
    // concurrent reader could see count > 0 while min still held the
    // u64::MAX empty sentinel. The checker walks every interleaving of
    // the reader's loads with the writer's stores.
    loom::model(|| {
        let h = Arc::new(ModelHistogram::new());
        let h2 = Arc::clone(&h);
        let t = loom::thread::spawn(move || {
            h2.record(7);
        });
        let min = h.min();
        let max = h.max();
        assert!(min == 0 || min == 7, "min sentinel leaked: {min}");
        assert!(max == 0 || max == 7, "impossible max: {max}");
        t.join().unwrap();
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
    });
}

#[test]
fn record_and_merge_interleave_cleanly() {
    loom::model(|| {
        let src = ModelHistogram::new();
        src.record(5); // populated before the threads race
        let src = Arc::new(src);
        let dst = Arc::new(ModelHistogram::new());
        let (s2, d2) = (Arc::clone(&src), Arc::clone(&dst));
        let t = loom::thread::spawn(move || {
            d2.merge(&s2);
        });
        dst.record(1);
        t.join().unwrap();
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.sum(), 6);
        assert_eq!(dst.min(), 1);
        assert_eq!(dst.max(), 5);
    });
}

#[test]
fn snapshot_during_concurrent_record_is_coherent() {
    // A summary taken mid-write may or may not include the in-flight
    // sample, but it must never report impossible statistics: a nonzero
    // count with sentinel extrema, min above max, or a sum from nowhere.
    loom::model(|| {
        let h = Arc::new(ModelHistogram::new());
        let h2 = Arc::clone(&h);
        let t = loom::thread::spawn(move || {
            h2.record(6);
        });
        let s = h.summary();
        assert!(s.count <= 1, "at most one sample is in flight");
        if s.count == 1 {
            assert_eq!(s.min, 6);
            assert_eq!(s.max, 6);
            assert_eq!(s.sum, 6);
            assert_eq!(s.p50, 6);
        } else {
            // The fields of a count-0 snapshot are loaded at separate
            // points, so later loads may already see the sample — but
            // never the sentinel.
            assert!(s.min == 0 || s.min == 6, "min sentinel leaked: {}", s.min);
        }
        t.join().unwrap();
        assert_eq!(h.summary().count, 1);
    });
}

#[test]
fn local_shard_drop_merge_races_a_snapshot_coherently() {
    // The `LocalRecorder` path: a worker thread records into a private
    // histogram (uncontended) and publishes the whole shard via one
    // `merge` when it drops, while the reporting thread snapshots the
    // shared histogram concurrently. The snapshot may land before or
    // after the publish, but never in an incoherent in-between state.
    loom::model(|| {
        let shared = Arc::new(ModelHistogram::new());
        let s2 = Arc::clone(&shared);
        let t = loom::thread::spawn(move || {
            // Thread-private recording: loom sees no scheduling points
            // that matter here, only the merge below races the reader.
            let local = ModelHistogram::new();
            local.record(4);
            local.record(8);
            s2.merge(&local);
        });
        let s = shared.summary();
        assert!(s.count <= 2, "shard published too many samples");
        if s.count > 0 {
            assert!(s.min == 4 || s.min == 8, "min sentinel leaked: {}", s.min);
            assert!(s.max == 4 || s.max == 8, "impossible max: {}", s.max);
            assert!(s.min <= s.max);
        }
        t.join().unwrap();
        let end = shared.summary();
        assert_eq!(end.count, 2);
        assert_eq!(end.sum, 12);
        assert_eq!(end.min, 4);
        assert_eq!(end.max, 8);
    });
}

#[test]
fn concurrent_merges_from_two_shards_accumulate() {
    // The telemetry counter/histogram aggregation pattern: worker shards
    // merged into one accumulator from two threads at once.
    loom::model(|| {
        let a = ModelHistogram::new();
        a.record(2);
        let b = ModelHistogram::new();
        b.record(9);
        let (a, b) = (Arc::new(a), Arc::new(b));
        let total = Arc::new(ModelHistogram::new());
        let (t2, a2) = (Arc::clone(&total), Arc::clone(&a));
        let t = loom::thread::spawn(move || {
            t2.merge(&a2);
        });
        total.merge(&b);
        t.join().unwrap();
        assert_eq!(total.count(), 2);
        assert_eq!(total.sum(), 11);
        assert_eq!(total.min(), 2);
        assert_eq!(total.max(), 9);
    });
}
