//! Model checking the flight-recorder ring's seqlock with the
//! weak-memory loom shim.
//!
//! Built only under `RUSTFLAGS="--cfg loom"`. The [`FlightRing`] is a
//! single-writer byte ring whose snapshot path runs concurrently with
//! the owner's appends under a seqlock (odd/even sequence + fence
//! pair; see the module docs in `src/flight.rs` for the protocol and
//! the Boehm-style correctness argument). These models check the two
//! properties the dump path relies on, under weak memory:
//!
//! - a snapshot that passes the sequence check is **consistent**: it
//!   is byte-identical to one of the ring states that existed at some
//!   prefix of the append history — never a torn mix of two appends;
//! - after the writer joins, a snapshot is **complete**: it sees every
//!   append, including the wrap trim of the evicted oldest line.
//!
//! The rings are deliberately tiny (capacity 8, one backing word) and
//! each model races a single append against the reader, so the
//! exploration stays within the schedule budget while still crossing
//! the wrap boundary — the interesting case, where the live window
//! starts mid-line and the snapshot must trim to a newline.

#![cfg(loom)]

use cirlearn_telemetry::FlightRing;
use loom::sync::Arc;

/// Every byte state a reader may legitimately observe for the given
/// append history, as trimmed snapshot text.
fn assert_valid_prefix_state(text: &str, valid: &[&str]) {
    assert!(
        valid.contains(&text),
        "snapshot {text:?} is not a prefix state of the append history {valid:?}"
    );
}

#[test]
fn concurrent_snapshot_is_never_torn() {
    loom::model(|| {
        let ring = Arc::new(FlightRing::new(8));
        let writer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                ring.append(b"a\n");
            })
        };
        // Racing reader: whatever interleaving and stale values the
        // model explores, a successful snapshot must be one of the
        // states the ring actually passed through (a torn read — e.g.
        // the new bytes without the head, or vice versa — fails the
        // sequence recheck and is retried or skipped, never returned).
        if let Some(bytes) = ring.snapshot() {
            let text = String::from_utf8(bytes).expect("whole UTF-8 lines");
            assert_valid_prefix_state(&text, &["", "a\n"]);
        }
        writer.join().unwrap();
        // Quiescent snapshot: complete, exactly the full history.
        let bytes = ring.snapshot().expect("no writer left to race");
        assert_eq!(bytes, b"a\n");
    });
}

#[test]
fn concurrent_snapshot_across_the_wrap_evicts_whole_lines() {
    loom::model(|| {
        // 5-byte lines in an 8-byte ring: the second append wraps, so
        // the live window starts inside the evicted first line and the
        // snapshot must trim it at the newline — a torn read would
        // surface as a mixed "aaaa…b…" state, which the valid set
        // excludes. The first append happens before the spawn (it is
        // the quiescent prefix); only the wrapping append races.
        let ring = Arc::new(FlightRing::new(8));
        ring.append(b"aaaa\n");
        let writer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                ring.append(b"bbbb\n");
            })
        };
        if let Some(bytes) = ring.snapshot() {
            let text = String::from_utf8(bytes).expect("whole UTF-8 lines");
            assert_valid_prefix_state(&text, &["aaaa\n", "bbbb\n"]);
        }
        writer.join().unwrap();
        let bytes = ring.snapshot().expect("no writer left to race");
        assert_eq!(bytes, b"bbbb\n", "the wrapped-over line is evicted whole");
    });
}
