//! Property tests for the flight-recorder ring (tier-1, default
//! backend).
//!
//! Randomized evidence on real `std` atomics for the recorder's core
//! bounded-history contract: however line lengths and ring capacities
//! interleave across the wrap boundary, a snapshot is always a whole-
//! line **suffix** of the append history — oldest events are evicted,
//! never torn, and the newest line always survives.

#![cfg(not(any(loom, race)))]

use cirlearn_telemetry::FlightRing;
use proptest::prelude::*;

/// An append history: each entry is one line's payload length (the
/// line is `"<index>:<'x' * len>\n"`, so every line is unique and
/// self-identifying).
fn lines(lens: &[usize]) -> Vec<String> {
    lens.iter()
        .enumerate()
        .map(|(i, len)| format!("{i}:{}\n", "x".repeat(*len)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn snapshot_is_a_whole_line_suffix_of_the_history(
        cap_pow in 3u32..9,                                    // 8..256 bytes
        lens in proptest::collection::vec(0usize..40, 1..60),
    ) {
        let capacity = 1usize << cap_pow;
        let ring = FlightRing::new(capacity);
        let history = lines(&lens);
        for line in &history {
            ring.append(line.as_bytes());
        }
        let fits: Vec<&String> =
            history.iter().filter(|l| l.len() <= capacity).collect();
        let dropped = history.len() - fits.len();
        prop_assert_eq!(
            ring.oversize_dropped(),
            dropped as u64,
            "lines wider than the whole ring are counted, not wedged"
        );
        let bytes = ring.snapshot().expect("no concurrent writer");
        let text = String::from_utf8(bytes).expect("snapshots are whole UTF-8 lines");
        // The snapshot must be exactly the longest suffix of the
        // appended (non-oversize) lines that fits the live window —
        // whole lines only, so a torn or reordered byte anywhere
        // breaks the equality.
        let mut expected = String::new();
        for line in fits.iter().rev() {
            if expected.len() + line.len() > ring.capacity() {
                break;
            }
            expected.insert_str(0, line);
        }
        // The trim-at-newline after a wrap may evict one extra whole
        // line when the window boundary lands exactly on a line start;
        // accept either the maximal suffix or the same suffix minus
        // its oldest line — but never anything torn.
        let minus_oldest = match expected.find('\n') {
            Some(i) => &expected[i + 1..],
            None => "",
        };
        prop_assert!(
            text == expected || text == minus_oldest,
            "snapshot {text:?} is not a whole-line suffix (expected {expected:?} \
             or {minus_oldest:?})"
        );
        if let Some(newest) = fits.last() {
            prop_assert!(
                text.ends_with(newest.as_str()),
                "the newest line always survives: {text:?} vs {newest:?}"
            );
        }
    }

    #[test]
    fn wrapped_ring_never_reports_stale_or_duplicate_lines(
        lens in proptest::collection::vec(0usize..12, 20..80),
    ) {
        // Small fixed ring, many small lines: maximal wrap churn.
        let ring = FlightRing::new(64);
        let history = lines(&lens);
        for line in &history {
            ring.append(line.as_bytes());
        }
        let text = String::from_utf8(ring.snapshot().expect("quiescent"))
            .expect("utf-8");
        let mut indices = Vec::new();
        for line in text.lines() {
            let (idx, _) = line.split_once(':').expect("self-identifying line");
            indices.push(idx.parse::<usize>().expect("intact index"));
        }
        // Surviving lines are a contiguous, strictly increasing run
        // ending at the newest append: no duplicates, no resurrection
        // of evicted lines, no gaps.
        for pair in indices.windows(2) {
            prop_assert_eq!(pair[1], pair[0] + 1, "consecutive survivors");
        }
        if let Some(&last) = indices.last() {
            prop_assert_eq!(last, history.len() - 1, "newest line survives");
        }
    }
}
