//! Model checking the per-thread trace buffers and histogram recorders
//! with the weak-memory loom shim.
//!
//! Built only under `RUSTFLAGS="--cfg loom"`. These tests cover the two
//! drain-at-join protocols the pipeline's worker threads rely on:
//!
//! - [`TraceLocal`]: events buffer in a thread-private `String` and hit
//!   the shared sink when the local drops (or a `flush` rescues them) —
//!   lines must never be lost or duplicated, whichever order the drops
//!   and flushes land in;
//! - [`LocalRecorder`]: samples accumulate in a thread-private
//!   histogram and merge into the shared named histogram exactly once,
//!   on drop — the merge is the lock-free path whose Release/Acquire
//!   publication discipline `loom_histogram.rs` pins down on a small
//!   model; here it runs through the *real* `Telemetry` API.
//!
//! Locals and recorders are created on the owning `Telemetry` /
//! `TraceWriter` in the parent and moved into the spawned threads:
//! that is exactly how the FBDT stage hands them to its workers, and it
//! honors the loom-backend invariant that the telemetry mutex is never
//! contended across a scheduling point (see `src/sync.rs`).

#![cfg(loom)]

use std::collections::BTreeMap;

use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{histograms, Telemetry, TraceWriter};

#[test]
fn trace_locals_drain_on_drop_at_the_join_point() {
    loom::model(|| {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let l1 = trace.local("learn/fbdt");
        let l2 = trace.local("learn/fbdt");
        let t1 = loom::thread::spawn(move || {
            l1.emit("node", &[("depth", Json::from(1u64))]);
            l1.emit("node", &[("depth", Json::from(2u64))]);
        });
        let t2 = loom::thread::spawn(move || {
            l2.emit("node", &[("depth", Json::from(9u64))]);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(trace.lines(), 3, "every buffered line drained on drop");
        let text = sink.take_string();
        let mut by_tid: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for line in text.lines() {
            let parsed = Json::parse(line).expect("drained lines stay valid JSON");
            assert_eq!(
                parsed.get("stage").and_then(Json::as_str),
                Some("learn/fbdt")
            );
            let tid = parsed.get("tid").and_then(Json::as_u64).expect("tid");
            let depth = parsed.get("depth").and_then(Json::as_u64).expect("depth");
            by_tid.entry(tid).or_default().push(depth);
        }
        let mut groups: Vec<Vec<u64>> = by_tid.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();
        assert_eq!(
            groups,
            vec![vec![1, 2], vec![9]],
            "each thread's lines carry its own tid"
        );
    });
}

#[test]
fn writer_flush_neither_loses_nor_duplicates_concurrent_local_lines() {
    // The CLI panic drop-guard path: `TraceWriter::flush` racing a
    // worker that is still emitting into (and finally dropping) its
    // local. A line may be drained by the rescue flush or by the drop,
    // but exactly one of them gets it.
    loom::model(|| {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let local = trace.local("fbdt");
        let worker = loom::thread::spawn(move || {
            local.emit("node", &[("depth", Json::from(1u64))]);
            local.emit("node", &[("depth", Json::from(2u64))]);
        });
        trace.flush(); // rescue attempt mid-flight
        worker.join().unwrap();
        trace.flush();
        assert_eq!(trace.lines(), 2, "no line lost or drained twice");
        assert_eq!(sink.take_string().lines().count(), 2);
    });
}

#[test]
fn local_recorder_drop_merge_publishes_through_the_real_api() {
    // One worker, the full-size production `Histogram`: the recorder is
    // created on the real `Telemetry` handle, moved into the thread,
    // and its drop-merge publishes before `join` returns — so the
    // post-join report must see every sample, under the weak memory
    // model, through the exact API the FBDT stage uses.
    loom::model(|| {
        let t = Telemetry::recording();
        let recorder = t.local_recorder(histograms::FBDT_NODE_NS);
        let worker = loom::thread::spawn(move || {
            recorder.record(4);
            recorder.record(8);
        });
        worker.join().unwrap();
        let report = t.report();
        let h = &report.histograms[histograms::FBDT_NODE_NS];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 12);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 8);
    });
}

#[test]
fn concurrent_local_recorder_drop_merges_conserve_samples() {
    // Two workers drop-merge into the same shared histogram at once.
    // The full-size histogram makes each merge ~500 scheduling points,
    // so the preemption budget is 1 here (a single adversarial switch
    // anywhere inside either merge); the exhaustive budget-2 sweep of
    // the same RMW discipline runs on the 4-bucket model in
    // `loom_histogram.rs`.
    let mut b = loom::Builder::new();
    b.max_preemptions = 1;
    b.check(|| {
        let t = Telemetry::recording();
        let r1 = t.local_recorder(histograms::FBDT_NODE_NS);
        let r2 = t.local_recorder(histograms::FBDT_NODE_NS);
        let t1 = loom::thread::spawn(move || {
            r1.record(4);
        });
        let t2 = loom::thread::spawn(move || {
            r2.record(8);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let report = t.report();
        let h = &report.histograms[histograms::FBDT_NODE_NS];
        assert_eq!(h.count, 2, "concurrent merges lose nothing");
        assert_eq!(h.sum, 12);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 8);
    });
}
