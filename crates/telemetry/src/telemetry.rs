//! The [`Telemetry`] handle: stage-scoped spans, monotonic counters,
//! latency histograms, trace emission and events.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::flight::FlightRecorder;
use crate::histogram::Histogram;
use crate::json::Json;
use crate::report::{
    AttributionRecord, CheckpointReport, OutputReport, PassReport, RunReport, StageReport,
};
use crate::reporter::{Level, Reporter};
use crate::status::{StatusAttr, StatusSnapshot};
use crate::sync::{Arc, Mutex, MutexGuard, Weak};
use crate::trace::{TraceLocal, TraceWriter};

/// Well-known counter names used across the pipeline.
pub mod counters {
    /// Oracle queries, counted at the source by `InstrumentedOracle`.
    pub const ORACLE_QUERIES: &str = "oracle.queries";
    /// FBDT internal nodes expanded (splits performed).
    pub const FBDT_SPLITS: &str = "fbdt.splits";
    /// FBDT leaves declared.
    pub const FBDT_LEAVES: &str = "fbdt.leaves";
    /// FBDT leaves forced by budget exhaustion.
    pub const FBDT_FORCED_LEAVES: &str = "fbdt.forced_leaves";
    /// Cubes collected into learned covers.
    pub const CUBES_COLLECTED: &str = "cover.cubes";
    /// Espresso minimization invocations.
    pub const ESPRESSO_CALLS: &str = "espresso.calls";
    /// Optimization passes executed.
    pub const OPT_PASSES: &str = "optimize.passes";
    /// AND gates removed across all optimization passes.
    pub const OPT_GATES_SAVED: &str = "optimize.gates_saved";
    /// Pass results verified by the checked-pass harness.
    pub const VERIFY_CHECKS: &str = "verify.checks";
    /// Structural lint violations found during verification.
    pub const VERIFY_LINT_VIOLATIONS: &str = "verify.lint_violations";
    /// Counterexample witnesses produced (functional differences).
    pub const VERIFY_WITNESSES: &str = "verify.witnesses";
    /// Pass results rejected (rolled back) by the harness.
    pub const VERIFY_REJECTED_PASSES: &str = "verify.rejected_passes";
    /// Oracle queries retried after a transient fault.
    pub const FAULT_RETRIES: &str = "faults.retries";
    /// Oracle queries that hit the watchdog read deadline.
    pub const FAULT_TIMEOUTS: &str = "faults.timeouts";
    /// Black-box processes respawned after a fatal fault.
    pub const FAULT_RESPAWNS: &str = "faults.respawns";
    /// Outputs degraded to a baseline circuit after the oracle died or
    /// the budget expired mid-output.
    pub const FAULT_DEGRADED_OUTPUTS: &str = "faults.degraded_outputs";
    /// Pass results audited by the static analyzer (pre-SAT gate).
    pub const ANALYZE_PASS_AUDITS: &str = "analyze.pass_audits";
    /// Dead (output-unreachable) AND nodes introduced by passes.
    pub const ANALYZE_DEAD_INTRODUCED: &str = "analyze.dead_introduced";
    /// Structurally duplicate AND nodes introduced by passes.
    pub const ANALYZE_DUPLICATES_INTRODUCED: &str = "analyze.duplicates_introduced";
    /// Ternary-provable constant AND nodes introduced by passes.
    pub const ANALYZE_CONSTANTS_INTRODUCED: &str = "analyze.constants_introduced";
    /// Structural lint errors observed by the pass audit (graphs unsafe
    /// to run semantic analyses on).
    pub const ANALYZE_STRUCTURAL_ERRORS: &str = "analyze.structural_errors";
    /// Checkpoints written (atomic tmp + fsync + rename completed).
    pub const CKPT_WRITES: &str = "ckpt.writes";
    /// Bytes in the most recently written checkpoint payload.
    pub const CKPT_BYTES: &str = "ckpt.bytes";
    /// Runs resumed from a checkpoint (1 per resumed segment).
    pub const CKPT_RESUMES: &str = "ckpt.resumes";
    /// Outputs synthesized from partial covers because the deadline
    /// expired mid-FBDT (deadline-aware degradation, step above the
    /// majority-constant fallback).
    pub const CKPT_DEADLINE_PARTIAL_OUTPUTS: &str = "ckpt.deadline_partial_outputs";
    /// Tasks pushed onto work-stealing deques (owner side).
    pub const EXEC_PUSHES: &str = "exec.pushes";
    /// Tasks popped from the owner end of work-stealing deques.
    pub const EXEC_POPS: &str = "exec.pops";
    /// Tasks successfully stolen from other workers' deques.
    pub const EXEC_STEALS: &str = "exec.steals";
    /// Steal attempts that found the victim's deque empty.
    pub const EXEC_STEAL_EMPTY: &str = "exec.steal_empty";
    /// Steal attempts that lost a race and had to retry.
    pub const EXEC_STEAL_RETRY: &str = "exec.steal_retry";
    /// High-water mark of any single deque's queue depth.
    pub const EXEC_DEPTH_MAX: &str = "exec.depth_max";
    /// Worker observers that published executor statistics.
    pub const EXEC_WORKERS: &str = "exec.workers";
    /// Flight-recorder dumps written (by any trigger).
    pub const FLIGHT_DUMPS: &str = "flight.dumps";
}

/// Well-known latency histogram names used across the pipeline. All
/// record nanoseconds.
pub mod histograms {
    /// Per-query oracle round-trip latency, recorded at the source by
    /// `InstrumentedOracle` (batch queries attribute the batch's mean
    /// per-item latency to each item).
    pub const ORACLE_QUERY_NS: &str = "oracle.query_ns";
    /// Per-query latency through the fault-tolerant layer, including
    /// retries, backoff sleeps and respawns (`ResilientOracle`).
    pub const ORACLE_GUARDED_QUERY_NS: &str = "oracle.guarded_query_ns";
    /// Per-node FBDT expansion cost (one pattern-sampling round).
    pub const FBDT_NODE_NS: &str = "fbdt.node_ns";
    /// Per-pass synthesis time (excluding verification).
    pub const SYNTH_PASS_NS: &str = "synth.pass_ns";
    /// Per-pass static-analysis audit time (the pre-SAT gate).
    pub const ANALYZE_AUDIT_NS: &str = "analyze.audit_ns";
    /// Per-task busy time on executor workers (task execution spans).
    pub const EXEC_BUSY_NS: &str = "exec.busy_ns";
    /// Per-gap idle time on executor workers (empty pop/steal spans).
    pub const EXEC_IDLE_NS: &str = "exec.idle_ns";
}

struct ActiveSpan {
    id: u64,
    name: String,
    start: Instant,
    counters_at_entry: BTreeMap<String, u64>,
}

/// Accumulated cost for one `(top-level stage, output)` attribution
/// key (the internal form of [`AttributionRecord`]).
#[derive(Debug, Default, Clone)]
struct LedgerCell {
    queries: u64,
    query_ns: u64,
    gates: u64,
    /// Queries issued while an FBDT depth was in context, keyed by
    /// that depth.
    by_depth: BTreeMap<u64, u64>,
}

/// Minimum spacing between periodic `metrics` snapshot events on the
/// trace stream.
const METRICS_INTERVAL: Duration = Duration::from_millis(250);

/// Peak resident set size in kB (`VmHWM`), when the platform exposes
/// it.
fn peak_rss_kb() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    // blocking-ok: procfs read taken at snapshot/finish points, not on
    // the per-query path.
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Writes a status payload produced under the telemetry lock (see
/// [`Inner::maybe_emit_metrics`]). Best-effort: a full disk or an
/// unlinked directory must not take the run down.
fn write_status(payload: Option<(PathBuf, String)>) {
    if let Some((path, contents)) = payload {
        let _ = crate::persist::write_atomic(&path, contents);
    }
}

/// Summarizes the shared histograms with any still-live per-thread
/// recorder samples folded in — *without* mutating the shared
/// histograms, so the eventual drop-merge cannot double-count. This is
/// what makes a mid-run report snapshot (the panic / dump path)
/// include samples that have not reached their join point yet.
fn fold_histograms(
    shared: &BTreeMap<String, Arc<Histogram>>,
    live: &[(String, Weak<Histogram>)],
) -> BTreeMap<String, crate::HistogramSummary> {
    let mut pending: BTreeMap<&str, Vec<Arc<Histogram>>> = BTreeMap::new();
    for (name, weak) in live {
        if let Some(h) = weak.upgrade() {
            if h.count() > 0 {
                pending.entry(name.as_str()).or_default().push(h);
            }
        }
    }
    let mut out = BTreeMap::new();
    for (name, h) in shared {
        match pending.remove(name.as_str()) {
            None => {
                if h.count() > 0 {
                    out.insert(name.clone(), h.summary());
                }
            }
            Some(locals) => {
                let folded = Histogram::new();
                folded.merge(h);
                for local in &locals {
                    folded.merge(local);
                }
                out.insert(name.clone(), folded.summary());
            }
        }
    }
    for (name, locals) in pending {
        let folded = Histogram::new();
        for local in &locals {
            folded.merge(local);
        }
        out.insert(name.to_owned(), folded.summary());
    }
    out
}

struct Inner {
    reporter: Box<dyn Reporter>,
    start: Instant,
    next_span_id: u64,
    stack: Vec<ActiveSpan>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    trace: Option<TraceWriter>,
    stages: BTreeMap<String, StageReport>,
    passes: Vec<PassReport>,
    checkpoints: Vec<CheckpointReport>,
    outputs: Vec<OutputReport>,
    meta: BTreeMap<String, String>,
    /// Attribution context: the output index the pipeline is currently
    /// learning, if any (see [`Telemetry::output_scope`]).
    context_output: Option<u64>,
    /// Attribution context: the FBDT depth currently being expanded.
    context_depth: Option<u64>,
    /// The per-(top-level stage, output) cost ledger.
    ledger: BTreeMap<(String, Option<u64>), LedgerCell>,
    /// Last AIG node count published by the learner (a gauge for
    /// `metrics` snapshots).
    gauge_aig_nodes: u64,
    metrics_last: Instant,
    metrics_last_queries: u64,
    /// Queries/s over the last metrics interval (a gauge for status
    /// snapshots, refreshed by [`Inner::maybe_emit_metrics`]).
    gauge_queries_per_s: u64,
    /// The always-on flight recorder (None only for handles that
    /// explicitly opted out).
    flight: Option<FlightRecorder>,
    /// Where [`Telemetry::dump_flight`] writes its JSONL snapshot.
    flight_dump_path: Option<PathBuf>,
    /// Where the live status snapshot is atomically rewritten (the
    /// `--status <path>` channel), on the metrics throttle.
    status_path: Option<PathBuf>,
    /// Learner progress cursor: (outputs done, outputs total).
    progress: (u64, u64),
    /// Live per-thread histogram recorders (weak, pruned on insert) so
    /// a report snapshot taken mid-run — the panic path — can fold in
    /// samples that have not drop-merged yet.
    local_recorders: Vec<(String, Weak<Histogram>)>,
}

impl Inner {
    fn path_of(&self, upto: usize) -> String {
        // panic-ok: callers pass `upto <= stack.len()` (span indices
        // come from the same stack).
        self.stack[..upto]
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join("/")
    }

    fn current_path(&self) -> String {
        self.path_of(self.stack.len())
    }

    /// The top-level stage name — the first segment of the span path
    /// (`""` outside any span). Top-level stages partition the run, so
    /// ledger entries keyed by them sum to run totals.
    fn top_stage(&self) -> &str {
        self.stack.first().map(|s| s.name.as_str()).unwrap_or("")
    }

    /// Emits a `metrics` snapshot event — to the trace stream and the
    /// flight recorder — if any sink wants it and (unless `force`d) at
    /// most once per [`METRICS_INTERVAL`].
    ///
    /// Returns the status-channel payload to write, if a `--status`
    /// path is set and the throttle fired. The *caller* must write it
    /// after releasing the telemetry mutex: the atomic rewrite fsyncs,
    /// and that must never happen under the lock.
    fn maybe_emit_metrics(&mut self, force: bool) -> Option<(PathBuf, String)> {
        if self.trace.is_none() && self.flight.is_none() && self.status_path.is_none() {
            return None;
        }
        let now = Instant::now();
        let dt = now.duration_since(self.metrics_last);
        if !force && dt < METRICS_INTERVAL {
            return None;
        }
        let queries = self
            .counters
            .get(counters::ORACLE_QUERIES)
            .copied()
            .unwrap_or(0);
        let qps = if dt.as_secs_f64() > 0.0 {
            ((queries.saturating_sub(self.metrics_last_queries)) as f64 / dt.as_secs_f64()) as u64
        } else {
            0
        };
        let stage = self.current_path();
        let mut fields = vec![
            ("queries", Json::from(queries)),
            ("queries_per_s", Json::from(qps)),
            ("aig_nodes", Json::from(self.gauge_aig_nodes)),
        ];
        if let Some(kb) = peak_rss_kb() {
            fields.push(("peak_rss_kb", Json::from(kb)));
        }
        self.trace("metrics", &stage, &fields);
        self.metrics_last = now;
        self.metrics_last_queries = queries;
        self.gauge_queries_per_s = qps;
        self.status_payload(false)
    }

    /// Builds the `--status` channel payload (path + serialized
    /// snapshot) for the caller to `write_atomic` outside the lock.
    fn status_payload(&self, done: bool) -> Option<(PathBuf, String)> {
        let path = self.status_path.clone()?;
        Some((path, self.status_snapshot(done).to_json().to_pretty()))
    }

    /// The current run state as a compact [`StatusSnapshot`].
    fn status_snapshot(&self, done: bool) -> StatusSnapshot {
        let counter = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let mut attribution: Vec<StatusAttr> = self
            .ledger
            .iter()
            .map(|((stage, output), cell)| StatusAttr {
                stage: stage.clone(),
                output: *output,
                queries: cell.queries,
                query_ns: cell.query_ns,
                gates: cell.gates,
            })
            .collect();
        attribution.sort_by_key(|cell| std::cmp::Reverse(cell.query_ns));
        attribution.truncate(StatusSnapshot::TOP_K);
        StatusSnapshot {
            pid: std::process::id() as u64,
            meta: self.meta.clone(),
            elapsed_s: self.start.elapsed().as_secs_f64(),
            stage: self.current_path(),
            queries: counter(counters::ORACLE_QUERIES),
            queries_per_s: self.gauge_queries_per_s,
            aig_nodes: self.gauge_aig_nodes,
            peak_rss_kb: peak_rss_kb().unwrap_or(0),
            outputs_done: self.progress.0,
            outputs_total: self.progress.1,
            ckpt_writes: counter(counters::CKPT_WRITES),
            ckpt_bytes: counter(counters::CKPT_BYTES),
            degraded_outputs: counter(counters::FAULT_DEGRADED_OUTPUTS),
            attribution,
            done,
        }
    }

    /// The tee point: every structural event goes to the attached
    /// trace stream (if any) *and* into the calling thread's flight
    /// ring (if the recorder is on). The flight copy is re-stamped
    /// with the recorder's own clock so a dump has one timeline.
    fn trace(&self, kind: &str, stage: &str, fields: &[(&'static str, Json)]) {
        if let Some(trace) = &self.trace {
            trace.emit(kind, stage, fields);
        }
        if let Some(flight) = &self.flight {
            flight.record_event(kind, stage, fields);
        }
    }

    /// Closes the deepest span with `id` (and, defensively, anything
    /// nested below it that leaked past its guard).
    fn exit_span(&mut self, id: u64) {
        let Some(pos) = self.stack.iter().rposition(|s| s.id == id) else {
            return; // double drop or foreign guard: ignore.
        };
        while self.stack.len() > pos {
            let depth = self.stack.len();
            let path = self.path_of(depth);
            let span = self.stack.pop().expect("nonempty");
            let elapsed = span.start.elapsed();
            let entry = self
                .stages
                .entry(path.clone())
                .or_insert_with(|| StageReport {
                    path: path.clone(),
                    ..StageReport::default()
                });
            entry.calls += 1;
            entry.elapsed += elapsed;
            for (name, &now) in &self.counters {
                let before = span.counters_at_entry.get(name).copied().unwrap_or(0);
                if now > before {
                    *entry.counters.entry(name.clone()).or_insert(0) += now - before;
                }
            }
            self.trace(
                "span_close",
                &path,
                &[
                    ("id", Json::from(span.id)),
                    ("name", Json::from(span.name.as_str())),
                    (
                        "elapsed_us",
                        Json::from(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)),
                    ),
                ],
            );
            let parent = self.current_path();
            self.reporter.event(
                Level::Debug,
                if parent.is_empty() { &path } else { &parent },
                &format!("{} done in {:.3}s", span.name, elapsed.as_secs_f64()),
            );
        }
    }
}

/// A cheaply clonable handle collecting spans, counters and events for
/// one pipeline run.
///
/// Clones share state, so the handle can be embedded wherever the
/// pipeline needs it; [`Telemetry::disabled`] is a zero-cost no-op
/// handle for callers that do not observe the run.
///
/// # Examples
///
/// ```
/// use cirlearn_telemetry::{counters, Telemetry};
///
/// let telemetry = Telemetry::disabled();
/// {
///     let _span = telemetry.span("support");
///     telemetry.add(counters::ORACLE_QUERIES, 100);
/// }
/// // A disabled handle records nothing.
/// assert_eq!(telemetry.counter(counters::ORACLE_QUERIES), 0);
/// ```
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(_) => f.write_str("Telemetry(enabled)"),
        }
    }
}

impl Telemetry {
    /// A no-op handle: every method returns immediately.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A collecting handle reporting events to `reporter`.
    pub fn new(reporter: Box<dyn Reporter>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner {
                reporter,
                start: Instant::now(),
                next_span_id: 0,
                stack: Vec::new(),
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                trace: None,
                stages: BTreeMap::new(),
                passes: Vec::new(),
                checkpoints: Vec::new(),
                outputs: Vec::new(),
                meta: BTreeMap::new(),
                context_output: None,
                context_depth: None,
                ledger: BTreeMap::new(),
                gauge_aig_nodes: 0,
                metrics_last: Instant::now(),
                metrics_last_queries: 0,
                gauge_queries_per_s: 0,
                flight: Some(FlightRecorder::new(crate::flight::DEFAULT_RING_BYTES)),
                flight_dump_path: None,
                status_path: None,
                progress: (0, 0),
                local_recorders: Vec::new(),
            }))),
        }
    }

    /// A collecting handle printing events to stderr up to `level`.
    pub fn to_stderr(level: Level) -> Self {
        Telemetry::new(Box::new(crate::reporter::StderrReporter::new(level)))
    }

    /// A collecting handle that discards events (counters and spans
    /// are still recorded).
    pub fn recording() -> Self {
        Telemetry::new(Box::new(crate::reporter::NullReporter))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Inner>> {
        self.inner
            .as_ref()
            // blocking-ok: the telemetry mutex is the documented
            // aggregation point — uncontended in the single-threaded
            // learner, skipped entirely when telemetry is disabled,
            // and bypassed by hot loops via `trace_local` buffers.
            .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Enters a stage span; the returned guard closes it on drop.
    /// Nested spans form `/`-joined paths; the counter increments that
    /// happen while a span is open are attributed to its path (and to
    /// every enclosing path) when it closes.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> Span {
        let Some(mut inner) = self.lock() else {
            return Span {
                telemetry: Telemetry::disabled(),
                id: 0,
            };
        };
        let id = inner.next_span_id;
        inner.next_span_id += 1;
        let snapshot = inner.counters.clone();
        let parent = inner.current_path();
        let path = if parent.is_empty() {
            name.to_owned()
        } else {
            format!("{parent}/{name}")
        };
        inner.trace(
            "span_open",
            &path,
            &[("id", Json::from(id)), ("name", Json::from(name))],
        );
        inner.reporter.event(
            Level::Trace,
            if parent.is_empty() { name } else { &parent },
            &format!("enter {name}"),
        );
        inner.stack.push(ActiveSpan {
            id,
            name: name.to_owned(),
            start: Instant::now(),
            counters_at_entry: snapshot,
        });
        drop(inner);
        Span {
            telemetry: self.clone(),
            id,
        }
    }

    /// Adds `delta` to a monotonic counter.
    pub fn add(&self, counter: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        if let Some(mut inner) = self.lock() {
            match inner.counters.get_mut(counter) {
                Some(v) => *v += delta,
                None => {
                    inner.counters.insert(counter.to_owned(), delta);
                }
            }
        }
    }

    /// Increments a monotonic counter by one.
    pub fn incr(&self, counter: &str) {
        self.add(counter, 1);
    }

    /// Counts `n` oracle queries that together took `total_ns`,
    /// attributing them to the active `(top-level stage, output)`
    /// ledger cell — and, when an FBDT depth is in context, to that
    /// depth's bucket. Called at the source by `InstrumentedOracle`;
    /// also drives the periodic `metrics` snapshot events.
    pub fn record_oracle_queries(&self, n: u64, total_ns: u64) {
        if n == 0 {
            return;
        }
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        let status = if let Some(mut inner) = self.lock() {
            match inner.counters.get_mut(counters::ORACLE_QUERIES) {
                Some(v) => *v += n,
                None => {
                    inner
                        .counters
                        .insert(counters::ORACLE_QUERIES.to_owned(), n);
                }
            }
            let stage = inner.top_stage().to_owned();
            let output = inner.context_output;
            let depth = inner.context_depth;
            let cell = inner.ledger.entry((stage, output)).or_default();
            cell.queries += n;
            cell.query_ns += total_ns;
            if let Some(d) = depth {
                *cell.by_depth.entry(d).or_insert(0) += n;
            }
            inner.maybe_emit_metrics(false)
        } else {
            None
        };
        write_status(status);
    }

    /// Marks the output the pipeline is about to learn; queries and
    /// gate deltas recorded until the guard drops are attributed to
    /// it. Scopes nest — the guard restores the previous output.
    #[must_use = "the output scope ends when the guard drops"]
    pub fn output_scope(&self, output: usize) -> OutputScope {
        let prev = match self.lock() {
            None => None,
            Some(mut inner) => {
                let prev = inner.context_output;
                inner.context_output = Some(output as u64);
                prev
            }
        };
        OutputScope {
            telemetry: self.clone(),
            prev,
        }
    }

    /// Sets (or clears) the FBDT depth in the attribution context, so
    /// queries issued while expanding a node are tagged with its
    /// depth.
    pub fn set_fbdt_depth(&self, depth: Option<u64>) {
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        if let Some(mut inner) = self.lock() {
            inner.context_depth = depth;
        }
    }

    /// Attributes `gates` AND gates built to the active ledger cell.
    pub fn attribute_gates(&self, gates: u64) {
        if gates == 0 {
            return;
        }
        if let Some(mut inner) = self.lock() {
            let stage = inner.top_stage().to_owned();
            let output = inner.context_output;
            inner.ledger.entry((stage, output)).or_default().gates += gates;
        }
    }

    /// Publishes the current AIG node count — the gauge reported in
    /// `metrics` snapshot events.
    pub fn set_aig_nodes(&self, nodes: u64) {
        if let Some(mut inner) = self.lock() {
            inner.gauge_aig_nodes = nodes;
        }
    }

    /// Publishes the learner's progress cursor: `done` of `total`
    /// outputs finished — surfaced on the status channel.
    pub fn set_progress(&self, done: u64, total: u64) {
        if let Some(mut inner) = self.lock() {
            inner.progress = (done, total);
        }
    }

    /// Raises `counter` to at least `value` — for high-water-mark
    /// gauges (for example the executor's maximum queue depth) that
    /// several workers publish independently.
    pub fn set_counter_max(&self, counter: &str, value: u64) {
        if value == 0 {
            return;
        }
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        if let Some(mut inner) = self.lock() {
            match inner.counters.get_mut(counter) {
                Some(v) => *v = (*v).max(value),
                None => {
                    inner.counters.insert(counter.to_owned(), value);
                }
            }
        }
    }

    /// Points the live status channel at `path` (or detaches it with
    /// `None`): the run then atomically rewrites a compact JSON
    /// [`StatusSnapshot`](crate::StatusSnapshot) there, at most once
    /// per metrics interval, plus a final one from
    /// [`Telemetry::finalize_status`].
    pub fn set_status_path(&self, path: Option<PathBuf>) {
        if let Some(mut inner) = self.lock() {
            inner.status_path = path;
        }
    }

    /// Sets (or clears) where [`Telemetry::dump_flight`] writes its
    /// JSONL snapshot. With no path set, dumps are skipped.
    pub fn set_flight_dump_path(&self, path: Option<PathBuf>) {
        if let Some(mut inner) = self.lock() {
            inner.flight_dump_path = path;
        }
    }

    /// Turns the always-on flight recorder off for this handle — the
    /// escape hatch behind `--flight off` (overhead experiments).
    pub fn disable_flight(&self) {
        if let Some(mut inner) = self.lock() {
            inner.flight = None;
        }
    }

    /// The flight recorder handle, if recording (tests and executor
    /// instrumentation use it directly).
    pub fn flight(&self) -> Option<FlightRecorder> {
        self.lock().and_then(|inner| inner.flight.clone())
    }

    /// Writes a final status snapshot marked `done` (ignoring the
    /// throttle) so `cirlearn top` followers see the run finish.
    pub fn finalize_status(&self) {
        let payload = self.lock().and_then(|inner| inner.status_payload(true));
        write_status(payload);
    }

    /// Dumps the flight recorder to the configured dump path: every
    /// thread's recent events (consistent ring snapshots, sorted by
    /// tid) plus a trailer — a `flight` marker carrying `reason`, a
    /// final `metrics` snapshot and the attribution ledger — written
    /// atomically as well-formed JSONL that `trace summary` and
    /// `trace export --chrome` accept.
    ///
    /// Returns the path written, or `None` when the recorder is off,
    /// no dump path is set, or the write failed. Called on panic
    /// (drop-guard), fault degradation, deadline expiry, checkpoint
    /// suspension and SIGUSR1.
    pub fn dump_flight(&self, reason: &str) -> Option<PathBuf> {
        // Ordering matters (the same bug class as the PR 6 drop-guard
        // fix): drain per-thread trace buffers first so the trace
        // stream on disk is not behind the dump that accompanies it.
        self.flush_trace();
        let (flight, path, trailer) = {
            // blocking-ok: flight dump path (crash/debug), not the
            // per-query path.
            let mut inner = self.lock()?;
            let flight = inner.flight.clone()?;
            let path = inner.flight_dump_path.clone()?;
            let stage = inner.current_path();
            // Trailer lines are formatted with the flight clock but
            // never recorded into a ring: they must sit *after* the
            // ring snapshots in the dump, and the dumping thread's own
            // ring lines all predate them, so per-tid monotonicity
            // holds.
            let mut trailer = String::new();
            trailer.push_str(&flight.format_event(
                "flight",
                &stage,
                &[
                    ("reason", Json::from(reason)),
                    ("pid", Json::from(std::process::id() as u64)),
                ],
            ));
            let queries = inner
                .counters
                .get(counters::ORACLE_QUERIES)
                .copied()
                .unwrap_or(0);
            let mut fields = vec![
                ("queries", Json::from(queries)),
                ("queries_per_s", Json::from(inner.gauge_queries_per_s)),
                ("aig_nodes", Json::from(inner.gauge_aig_nodes)),
            ];
            if let Some(kb) = peak_rss_kb() {
                fields.push(("peak_rss_kb", Json::from(kb)));
            }
            trailer.push_str(&flight.format_event("metrics", &stage, &fields));
            for ((lstage, output), cell) in &inner.ledger {
                trailer.push_str(&flight.format_event(
                    "attr",
                    lstage,
                    &[
                        ("output", output.map(Json::from).unwrap_or(Json::Null)),
                        ("queries", Json::from(cell.queries)),
                        ("query_ns", Json::from(cell.query_ns)),
                        ("gates", Json::from(cell.gates)),
                    ],
                ));
            }
            *inner
                .counters
                .entry(counters::FLIGHT_DUMPS.to_owned())
                .or_insert(0) += 1;
            (flight, path, trailer)
        };
        // Snapshot + atomic write happen outside the lock: the fsync
        // pair can be slow and must never stall recording threads.
        match flight.dump_to_file(&path, &trailer) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }

    /// Emits a `metrics` snapshot immediately (ignoring the periodic
    /// throttle) — a no-op unless a trace stream, the flight recorder
    /// or a status path is attached.
    pub fn emit_metrics_snapshot(&self) {
        let status = self
            .lock()
            .and_then(|mut inner| inner.maybe_emit_metrics(true));
        write_status(status);
    }

    /// Flushes the attribution ledger onto the trace stream and the
    /// flight recorder: one final `metrics` snapshot, then one `attr`
    /// event per ledger cell. Safe to call more than once (events
    /// repeat; the ledger itself is unchanged) — the CLI calls it
    /// right before writing the report, and the panic drop-guard calls
    /// it before the `aborted` marker.
    pub fn trace_attribution(&self) {
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        let status = if let Some(mut inner) = self.lock() {
            if inner.trace.is_none() && inner.flight.is_none() {
                return;
            }
            let status = inner.maybe_emit_metrics(true);
            for ((stage, output), cell) in &inner.ledger {
                let fields = [
                    ("output", output.map(Json::from).unwrap_or(Json::Null)),
                    ("queries", Json::from(cell.queries)),
                    ("query_ns", Json::from(cell.query_ns)),
                    ("gates", Json::from(cell.gates)),
                ];
                inner.trace("attr", stage, &fields);
            }
            status
        } else {
            None
        };
        write_status(status);
    }

    /// The current value of a counter (0 when absent or disabled).
    pub fn counter(&self, counter: &str) -> u64 {
        self.lock()
            .and_then(|inner| inner.counters.get(counter).copied())
            .unwrap_or(0)
    }

    /// Emits an event to the reporter, tagged with the current stage.
    ///
    /// When a trace stream is attached the event is mirrored onto it
    /// regardless of the reporter's level filter, so `Debug`-level
    /// fault events reach the trace without making stderr noisy.
    pub fn event(&self, level: Level, message: &str) {
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        if let Some(mut inner) = self.lock() {
            let stage = inner.current_path();
            inner.trace(
                "event",
                &stage,
                &[
                    ("level", Json::from(level.name())),
                    ("message", Json::from(message)),
                ],
            );
            inner.reporter.event(level, &stage, message);
        }
    }

    /// Attaches a JSONL trace stream; subsequent spans, passes,
    /// checkpoints and events are mirrored onto it.
    pub fn set_trace(&self, trace: TraceWriter) {
        if let Some(mut inner) = self.lock() {
            inner.trace = Some(trace);
        }
    }

    /// Whether a trace stream is attached (hot paths use this to skip
    /// building per-event fields).
    pub fn is_tracing(&self) -> bool {
        self.lock().is_some_and(|inner| inner.trace.is_some())
    }

    /// Emits a custom trace event tagged with the current stage —
    /// to the trace stream (if attached) and the flight recorder.
    pub fn trace(&self, kind: &str, fields: &[(&'static str, Json)]) {
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        if let Some(inner) = self.lock() {
            if inner.trace.is_some() || inner.flight.is_some() {
                let stage = inner.current_path();
                inner.trace(kind, &stage, fields);
            }
        }
    }

    /// Flushes the attached trace stream, if any — draining any
    /// outstanding per-thread buffers first.
    pub fn flush_trace(&self) {
        // blocking-ok: `Telemetry::lock` — uncontended telemetry
        // mutex, justified at its definition.
        if let Some(inner) = self.lock() {
            if let Some(trace) = &inner.trace {
                trace.flush();
            }
        }
    }

    /// A per-thread buffered trace emitter bound to the current span
    /// path, or `None` when neither a trace stream nor the flight
    /// recorder is attached. Hot loops (the FBDT node loop) emit
    /// through it without touching the telemetry mutex per event;
    /// dropping it flushes the buffer.
    ///
    /// With the always-on flight recorder this returns `Some` even
    /// when `--trace` is off: the local then records only into the
    /// calling thread's bounded flight ring, which is what makes the
    /// black box capture hot-path `node` events for free.
    pub fn trace_local(&self) -> Option<TraceLocal> {
        // blocking-ok: `Telemetry::lock` taken once per span to mint
        // the buffered local; per-event emits then bypass the mutex.
        let inner = self.lock()?;
        let stage = inner.current_path();
        match (&inner.trace, &inner.flight) {
            (Some(trace), Some(flight)) => Some(trace.local(&stage).with_flight(flight.clone())),
            (Some(trace), None) => Some(trace.local(&stage)),
            (None, Some(flight)) => Some(TraceLocal::flight_only(flight.clone(), &stage)),
            (None, None) => None,
        }
    }

    /// A lock-free recording handle for the named histogram, creating
    /// it on first use. Grab the handle once outside a hot loop; the
    /// per-sample cost is then a few relaxed atomic ops. Disabled
    /// telemetry returns a no-op handle.
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        match self.lock() {
            None => HistogramHandle(None),
            Some(mut inner) => HistogramHandle(Some(Arc::clone(
                inner
                    .histograms
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(Histogram::new())),
            ))),
        }
    }

    /// Records one duration sample into the named histogram.
    pub fn record_time(&self, name: &str, elapsed: Duration) {
        self.histogram_handle(name).record_duration(elapsed);
    }

    /// Merges a locally collected histogram into the named shared one
    /// — used by stages that aggregate privately and publish at the
    /// end (e.g. FBDT stats).
    pub fn merge_histogram(&self, name: &str, histogram: &Histogram) {
        if histogram.count() > 0 {
            if let HistogramHandle(Some(shared)) = self.histogram_handle(name) {
                shared.merge(histogram);
            }
        }
    }

    /// A per-thread recorder for the named histogram: samples land in
    /// a private histogram and merge into the shared one when the
    /// recorder drops (the join point). Worker threads use this to
    /// record without sharing a cache line; the merge path is the one
    /// model-checked by the loom suite.
    ///
    /// Live recorders are also weak-registered so a report snapshot
    /// taken mid-run (the panic / dump path) folds their samples in
    /// without waiting for the drop-merge — without double counting,
    /// because the fold never mutates the shared histogram.
    pub fn local_recorder(&self, name: &str) -> LocalRecorder {
        // blocking-ok: `Telemetry::lock` taken once per recorder
        // creation; per-sample records go to the local histogram.
        match self.lock() {
            None => LocalRecorder::default(),
            Some(mut inner) => {
                let shared = Arc::clone(
                    inner
                        .histograms
                        .entry(name.to_owned())
                        .or_insert_with(|| Arc::new(Histogram::new())),
                );
                let local = Arc::new(Histogram::new());
                // Hot loops create a recorder per iteration; prune dead
                // registrations before inserting so the registry stays
                // bounded by the number of *live* recorders.
                if inner.local_recorders.len() >= 16 {
                    inner
                        .local_recorders
                        .retain(|(_, weak)| weak.strong_count() > 0);
                }
                inner
                    .local_recorders
                    .push((name.to_owned(), Arc::downgrade(&local)));
                LocalRecorder {
                    local,
                    shared: Some(shared),
                }
            }
        }
    }

    /// Annotates the run (case name, seed, scale, ...).
    pub fn set_meta(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(mut inner) = self.lock() {
            inner.meta.insert(key.to_owned(), value.to_string());
        }
    }

    /// Records one optimization pass application. `verify_elapsed` is
    /// the time the checked-pass harness spent validating the result
    /// (zero when verification is off).
    #[allow(clippy::too_many_arguments)]
    pub fn record_pass(
        &self,
        pass: &str,
        round: u64,
        gates_before: u64,
        gates_after: u64,
        levels_before: u64,
        levels_after: u64,
        elapsed: Duration,
        verify_elapsed: Duration,
    ) {
        if let Some(mut inner) = self.lock() {
            let stage = inner.current_path();
            inner
                .histograms
                .entry(histograms::SYNTH_PASS_NS.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new()))
                .record_duration(elapsed);
            inner.trace(
                "pass",
                &stage,
                &[
                    ("pass", Json::from(pass)),
                    ("round", Json::from(round)),
                    ("gates_before", Json::from(gates_before)),
                    ("gates_after", Json::from(gates_after)),
                    ("levels_before", Json::from(levels_before)),
                    ("levels_after", Json::from(levels_after)),
                    (
                        "elapsed_us",
                        Json::from(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)),
                    ),
                    (
                        "verify_us",
                        Json::from(u64::try_from(verify_elapsed.as_micros()).unwrap_or(u64::MAX)),
                    ),
                ],
            );
            inner.reporter.event(
                Level::Debug,
                &stage,
                &format!(
                    "pass {pass} (round {round}): {gates_before} -> {gates_after} gates, \
                     {levels_before} -> {levels_after} levels in {:.3}s",
                    elapsed.as_secs_f64()
                ),
            );
            inner.passes.push(PassReport {
                stage,
                pass: pass.to_owned(),
                round,
                gates_before,
                gates_after,
                levels_before,
                levels_after,
                elapsed,
                verify_elapsed,
            });
        }
        self.incr(counters::OPT_PASSES);
        self.add(
            counters::OPT_GATES_SAVED,
            gates_before.saturating_sub(gates_after),
        );
    }

    /// Records a budget checkpoint (see `Budget::checkpoint` in the
    /// core crate).
    pub fn checkpoint(&self, stage: &str, at: Duration, remaining: Option<Duration>) {
        if let Some(mut inner) = self.lock() {
            let current = inner.current_path();
            inner.trace(
                "checkpoint",
                &current,
                &[
                    ("label", Json::from(stage)),
                    (
                        "at_us",
                        Json::from(u64::try_from(at.as_micros()).unwrap_or(u64::MAX)),
                    ),
                    (
                        "remaining_us",
                        match remaining {
                            None => Json::Null,
                            Some(r) => Json::from(u64::try_from(r.as_micros()).unwrap_or(u64::MAX)),
                        },
                    ),
                ],
            );
            let message = match remaining {
                Some(r) => format!(
                    "checkpoint {stage}: {:.3}s elapsed, {:.3}s remaining",
                    at.as_secs_f64(),
                    r.as_secs_f64()
                ),
                None => format!(
                    "checkpoint {stage}: {:.3}s elapsed, unlimited budget",
                    at.as_secs_f64()
                ),
            };
            inner.reporter.event(Level::Debug, &current, &message);
            inner.checkpoints.push(CheckpointReport {
                stage: stage.to_owned(),
                at,
                remaining,
            });
        }
    }

    /// Records the per-output results (replacing any prior set).
    pub fn set_outputs(&self, outputs: Vec<OutputReport>) {
        if let Some(mut inner) = self.lock() {
            inner.outputs = outputs;
        }
    }

    /// Snapshots everything collected so far into a [`RunReport`].
    ///
    /// Open spans are not included — close them (drop their guards)
    /// before reporting.
    pub fn report(&self) -> RunReport {
        match self.lock() {
            None => RunReport::default(),
            Some(inner) => RunReport {
                meta: inner.meta.clone(),
                elapsed: inner.start.elapsed(),
                faults: crate::report::FaultsReport::from_counters(&inner.counters),
                exec: crate::report::ExecReport::from_counters(&inner.counters),
                counters: inner.counters.clone(),
                histograms: fold_histograms(&inner.histograms, &inner.local_recorders),
                stages: inner.stages.values().cloned().collect(),
                passes: inner.passes.clone(),
                checkpoints: inner.checkpoints.clone(),
                outputs: inner.outputs.clone(),
                attribution: inner
                    .ledger
                    .iter()
                    .map(|((stage, output), cell)| AttributionRecord {
                        stage: stage.clone(),
                        output: *output,
                        queries: cell.queries,
                        query_ns: cell.query_ns,
                        gates: cell.gates,
                        by_depth: cell.by_depth.clone(),
                    })
                    .collect(),
            },
        }
    }

    fn exit_span(&self, id: u64) {
        if let Some(mut inner) = self.lock() {
            inner.exit_span(id);
        }
    }
}

/// A lock-free recording handle for one named histogram, obtained via
/// [`Telemetry::histogram_handle`]. Holds an `Arc` to the shared
/// histogram (or nothing, for disabled telemetry), so hot loops record
/// without touching the telemetry mutex.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A no-op handle.
    pub fn disabled() -> Self {
        HistogramHandle(None)
    }

    /// Whether samples are being recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&self, value: u64, n: u64) {
        if let Some(h) = &self.0 {
            h.record_n(value, n);
        }
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, elapsed: Duration) {
        if let Some(h) = &self.0 {
            h.record_duration(elapsed);
        }
    }
}

/// A span guard; closes its stage when dropped.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    id: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.telemetry.exit_span(self.id);
    }
}

/// An attribution-context guard from [`Telemetry::output_scope`];
/// restores the previous output (and clears any FBDT depth) on drop.
#[derive(Debug)]
pub struct OutputScope {
    telemetry: Telemetry,
    prev: Option<u64>,
}

impl Drop for OutputScope {
    fn drop(&mut self) {
        if let Some(mut inner) = self.telemetry.lock() {
            inner.context_output = self.prev;
            inner.context_depth = None;
        }
    }
}

/// A per-thread histogram recorder from [`Telemetry::local_recorder`].
///
/// Samples accumulate in a thread-private [`Histogram`] and are merged
/// into the shared named histogram exactly once, when the recorder
/// drops. With disabled telemetry every call is a no-op.
///
/// While live, the recorder is weak-registered with its telemetry so
/// mid-run report snapshots can fold its samples in (see
/// [`Telemetry::local_recorder`]); the `Arc` exists only for that
/// registration — the owning thread is the sole writer.
#[derive(Debug, Default)]
pub struct LocalRecorder {
    local: Arc<Histogram>,
    shared: Option<Arc<Histogram>>,
}

impl LocalRecorder {
    /// A no-op recorder.
    pub fn disabled() -> Self {
        LocalRecorder::default()
    }

    /// Whether samples will reach a shared histogram.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Records one sample locally.
    pub fn record(&self, value: u64) {
        if self.shared.is_some() {
            self.local.record(value);
        }
    }

    /// Records `n` samples of the same value locally.
    pub fn record_n(&self, value: u64, n: u64) {
        if self.shared.is_some() {
            self.local.record_n(value, n);
        }
    }

    /// Records a duration as nanoseconds locally.
    pub fn record_duration(&self, elapsed: Duration) {
        if self.shared.is_some() {
            self.local.record_duration(elapsed);
        }
    }
}

impl Drop for LocalRecorder {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            if self.local.count() > 0 {
                shared.merge(&self.local);
            }
        }
    }
}

impl<R: Reporter> Reporter for Arc<Mutex<R>> {
    fn event(&mut self, level: Level, stage: &str, message: &str) {
        // blocking-ok: test/fan-in adapter — reporter events are
        // already rate-limited by level upstream.
        self.lock()
            .unwrap_or_else(|p| p.into_inner())
            .event(level, stage, message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reporter::BufferReporter;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        let _span = t.span("stage");
        t.add("c", 5);
        assert_eq!(t.counter("c"), 0);
        assert!(!t.is_enabled());
        assert_eq!(t.report(), RunReport::default());
    }

    #[test]
    fn counters_attribute_to_nested_spans() {
        let t = Telemetry::recording();
        {
            let _outer = t.span("learn");
            t.add("q", 10);
            {
                let _inner = t.span("support");
                t.add("q", 32);
            }
            t.add("q", 5);
        }
        let report = t.report();
        // The nested span sees only its own delta; the outer span sees
        // everything that happened while it was open.
        let support = report
            .stage("learn/support")
            .expect("nested span was closed, so its stage must exist");
        assert_eq!(support.counters["q"], 32);
        let learn = report
            .stage("learn")
            .expect("outer span was closed, so its stage must exist");
        assert_eq!(learn.counters["q"], 47);
        assert_eq!(report.counter("q"), 47);
        assert_eq!(learn.calls, 1);
    }

    #[test]
    fn repeated_spans_aggregate_calls_and_counters() {
        let t = Telemetry::recording();
        for k in 0..3 {
            let _span = t.span("support");
            t.add("q", k + 1);
        }
        let stage = t.report().stage("support").cloned().expect("recorded");
        assert_eq!(stage.calls, 3);
        assert_eq!(stage.counters["q"], 6);
    }

    #[test]
    fn sibling_spans_partition_counters() {
        let t = Telemetry::recording();
        {
            let _a = t.span("a");
            t.add("q", 7);
        }
        {
            let _b = t.span("b");
            t.add("q", 11);
        }
        let report = t.report();
        assert_eq!(report.top_level_counter_sum("q"), 18);
        assert_eq!(report.counter("q"), 18);
    }

    #[test]
    fn out_of_order_drops_are_tolerated() {
        let t = Telemetry::recording();
        let outer = t.span("outer");
        let inner = t.span("inner");
        t.add("q", 3);
        // Dropping the outer guard first force-closes the inner span.
        drop(outer);
        drop(inner);
        let report = t.report();
        let inner_stage = report
            .stage("outer/inner")
            .expect("force-closed span still records its stage");
        assert_eq!(inner_stage.counters["q"], 3);
        let outer_stage = report.stage("outer").expect("outer span records its stage");
        assert_eq!(outer_stage.counters["q"], 3);
    }

    #[test]
    fn events_carry_the_active_stage() {
        let buffer = Arc::new(Mutex::new(BufferReporter::new()));
        let t = Telemetry::new(Box::new(Arc::clone(&buffer)));
        {
            let _span = t.span("fbdt");
            t.event(Level::Info, "expanding");
        }
        t.event(Level::Warn, "done");
        let events = buffer
            .lock()
            .expect("no other thread touches the buffer in this test");
        let info: Vec<_> = events
            .events()
            .iter()
            .filter(|(l, _, _)| *l == Level::Info)
            .collect();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].1, "fbdt");
        assert_eq!(info[0].2, "expanding");
        let warn: Vec<_> = events
            .events()
            .iter()
            .filter(|(l, _, _)| *l == Level::Warn)
            .collect();
        assert_eq!(warn[0].1, "");
    }

    #[test]
    fn passes_and_checkpoints_are_recorded_in_order() {
        let t = Telemetry::recording();
        t.record_pass(
            "rewrite",
            1,
            100,
            80,
            9,
            8,
            Duration::from_millis(5),
            Duration::from_millis(1),
        );
        t.record_pass(
            "balance",
            1,
            80,
            80,
            8,
            7,
            Duration::from_millis(2),
            Duration::ZERO,
        );
        t.checkpoint("support", Duration::from_secs(1), None);
        let report = t.report();
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.passes[0].pass, "rewrite");
        assert_eq!(report.counter(counters::OPT_PASSES), 2);
        assert_eq!(report.counter(counters::OPT_GATES_SAVED), 20);
        assert_eq!(report.checkpoints.len(), 1);
        assert_eq!(report.checkpoints[0].remaining, None);
    }

    #[test]
    fn meta_and_outputs_round_into_report() {
        let t = Telemetry::recording();
        t.set_meta("case", "case_03");
        t.set_meta("seed", 117u64);
        t.set_outputs(vec![OutputReport {
            output: 0,
            name: "y".to_owned(),
            strategy: "fbdt".to_owned(),
            support: 4,
            forced_leaves: 0,
            queries: 10,
            elapsed: Duration::from_millis(3),
            gates_before_opt: 9,
            gates_after_opt: 5,
        }]);
        let report = t.report();
        assert_eq!(report.meta["case"], "case_03");
        assert_eq!(report.meta["seed"], "117");
        assert_eq!(report.outputs.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::recording();
        let t2 = t.clone();
        t2.add("q", 4);
        assert_eq!(t.counter("q"), 4);
    }

    #[test]
    fn histogram_handles_record_into_the_report() {
        let t = Telemetry::recording();
        let h = t.histogram_handle(crate::histograms::ORACLE_QUERY_NS);
        assert!(h.is_enabled());
        h.record(1_000);
        h.record_n(2_000, 3);
        t.record_time(crate::histograms::SYNTH_PASS_NS, Duration::from_micros(7));
        let report = t.report();
        let oracle = &report.histograms[crate::histograms::ORACLE_QUERY_NS];
        assert_eq!(oracle.count, 4);
        assert_eq!(oracle.max, 2_000);
        let synth = &report.histograms[crate::histograms::SYNTH_PASS_NS];
        assert_eq!(synth.count, 1);
        assert_eq!(synth.min, 7_000);
    }

    #[test]
    fn empty_histograms_stay_out_of_the_report() {
        let t = Telemetry::recording();
        let _unused = t.histogram_handle("never.recorded");
        assert!(t.report().histograms.is_empty());
    }

    #[test]
    fn disabled_handles_ignore_histograms_and_trace() {
        let t = Telemetry::disabled();
        let h = t.histogram_handle("x");
        assert!(!h.is_enabled());
        h.record(5);
        assert!(!t.is_tracing());
        t.trace("custom", &[]);
        t.flush_trace();
        assert!(t.report().histograms.is_empty());
    }

    #[test]
    fn merge_histogram_publishes_local_samples() {
        let t = Telemetry::recording();
        let local = crate::Histogram::new();
        local.record(10);
        local.record(20);
        t.merge_histogram(crate::histograms::FBDT_NODE_NS, &local);
        let report = t.report();
        assert_eq!(report.histograms[crate::histograms::FBDT_NODE_NS].count, 2);
    }

    #[test]
    fn trace_stream_sees_spans_passes_checkpoints_and_events() {
        use crate::trace::TraceWriter;
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let t = Telemetry::recording();
        t.set_trace(trace);
        assert!(t.is_tracing());
        {
            let _outer = t.span("learn");
            let _inner = t.span("fbdt");
            t.trace("node", &[("depth", Json::from(2u64))]);
            t.event(Level::Debug, "expanding");
        }
        t.record_pass(
            "rewrite",
            1,
            10,
            8,
            3,
            3,
            Duration::from_millis(1),
            Duration::ZERO,
        );
        t.checkpoint("optimize", Duration::from_secs(1), None);
        t.flush_trace();
        let text = sink.take_string();
        let mut opens = 0i64;
        let mut kinds = Vec::new();
        for line in text.lines() {
            let parsed = Json::parse(line).expect("trace line parses");
            let kind = parsed.get("kind").and_then(Json::as_str).expect("kind");
            kinds.push(kind.to_owned());
            match kind {
                "span_open" => opens += 1,
                "span_close" => opens -= 1,
                _ => {}
            }
        }
        assert_eq!(opens, 0, "span open/close balanced");
        for expected in [
            "span_open",
            "span_close",
            "node",
            "event",
            "pass",
            "checkpoint",
        ] {
            assert!(kinds.iter().any(|k| k == expected), "missing {expected}");
        }
        // The node event carries the stage path of the enclosing spans.
        let node_line = text.lines().find(|l| l.contains("\"node\"")).expect("node");
        let parsed = Json::parse(node_line).expect("parses");
        assert_eq!(
            parsed.get("stage").and_then(Json::as_str),
            Some("learn/fbdt")
        );
    }

    #[test]
    fn oracle_queries_attribute_to_the_stage_output_ledger() {
        let t = Telemetry::recording();
        {
            let _stage = t.span("templates");
            t.record_oracle_queries(100, 5_000);
        }
        {
            let _scope = t.output_scope(0);
            let _stage = t.span("fbdt");
            t.set_fbdt_depth(Some(2));
            t.record_oracle_queries(40, 1_000);
            t.set_fbdt_depth(Some(3));
            t.record_oracle_queries(10, 200);
            t.attribute_gates(6);
        }
        {
            let _scope = t.output_scope(1);
            let _stage = t.span("exhaustive");
            t.record_oracle_queries(64, 800);
        }
        let report = t.report();
        assert_eq!(report.counter(counters::ORACLE_QUERIES), 214);
        assert_eq!(report.attribution.len(), 3);
        let total: u64 = report.attribution.iter().map(|a| a.queries).sum();
        assert_eq!(total, 214, "ledger partitions the query count");
        let fbdt = report
            .attribution
            .iter()
            .find(|a| a.stage == "fbdt")
            .expect("fbdt cell");
        assert_eq!(fbdt.output, Some(0));
        assert_eq!(fbdt.queries, 50);
        assert_eq!(fbdt.query_ns, 1_200);
        assert_eq!(fbdt.gates, 6);
        assert_eq!(fbdt.by_depth[&2], 40);
        assert_eq!(fbdt.by_depth[&3], 10);
        let templates = report
            .attribution
            .iter()
            .find(|a| a.stage == "templates")
            .expect("templates cell");
        assert_eq!(templates.output, None);
        assert!(templates.by_depth.is_empty());
    }

    #[test]
    fn output_scopes_nest_and_restore() {
        let t = Telemetry::recording();
        {
            let _a = t.span("s");
            let _outer = t.output_scope(4);
            {
                let _inner = t.output_scope(7);
                t.record_oracle_queries(1, 0);
            }
            t.record_oracle_queries(1, 0);
        }
        let report = t.report();
        let outputs: Vec<Option<u64>> = report.attribution.iter().map(|a| a.output).collect();
        assert_eq!(outputs, vec![Some(4), Some(7)]);
    }

    #[test]
    fn trace_attribution_emits_metrics_then_attr_events() {
        use crate::trace::TraceWriter;
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let t = Telemetry::recording();
        t.set_trace(trace);
        {
            let _scope = t.output_scope(0);
            let _stage = t.span("fbdt");
            t.record_oracle_queries(25, 700);
        }
        t.set_aig_nodes(42);
        t.trace_attribution();
        t.flush_trace();
        let text = sink.take_string();
        let metrics: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("parses"))
            .filter(|p| p.get("kind").and_then(Json::as_str) == Some("metrics"))
            .collect();
        assert!(!metrics.is_empty(), "a final metrics snapshot is emitted");
        let last = metrics.last().expect("nonempty");
        assert_eq!(last.get("queries").and_then(Json::as_u64), Some(25));
        assert_eq!(last.get("aig_nodes").and_then(Json::as_u64), Some(42));
        assert!(last.get("queries_per_s").and_then(Json::as_u64).is_some());
        let attrs: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("parses"))
            .filter(|p| p.get("kind").and_then(Json::as_str) == Some("attr"))
            .collect();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].get("stage").and_then(Json::as_str), Some("fbdt"));
        assert_eq!(attrs[0].get("output").and_then(Json::as_u64), Some(0));
        assert_eq!(attrs[0].get("queries").and_then(Json::as_u64), Some(25));
        assert_eq!(attrs[0].get("query_ns").and_then(Json::as_u64), Some(700));
    }

    #[test]
    fn local_recorders_merge_into_the_shared_histogram_on_drop() {
        let t = Telemetry::recording();
        {
            let local = t.local_recorder(crate::histograms::FBDT_NODE_NS);
            assert!(local.is_enabled());
            local.record(1_000);
            local.record_duration(Duration::from_micros(2));
            // Not yet drop-merged, but a mid-run snapshot (the panic /
            // dump path) folds the live recorder's samples in.
            let mid = t.report();
            assert_eq!(mid.histograms[crate::histograms::FBDT_NODE_NS].count, 2);
        }
        // After the drop-merge the count is unchanged: the fold never
        // mutates the shared histogram, so nothing double-counts.
        let report = t.report();
        assert_eq!(report.histograms[crate::histograms::FBDT_NODE_NS].count, 2);
    }

    #[test]
    fn live_recorder_registry_is_pruned_not_leaked() {
        let t = Telemetry::recording();
        // Simulate a hot loop creating one recorder per iteration.
        for _ in 0..10_000 {
            let local = t.local_recorder(crate::histograms::FBDT_NODE_NS);
            local.record(1);
        }
        let held = t.local_recorder(crate::histograms::FBDT_NODE_NS);
        held.record(7);
        let inner = t.inner.as_ref().expect("enabled").lock().expect("lock");
        assert!(
            inner.local_recorders.len() <= 17,
            "dead registrations must be pruned, found {}",
            inner.local_recorders.len()
        );
        drop(inner);
        let report = t.report();
        assert_eq!(
            report.histograms[crate::histograms::FBDT_NODE_NS].count,
            10_001
        );
    }

    #[test]
    fn disabled_local_recorder_is_inert() {
        let t = Telemetry::disabled();
        let local = t.local_recorder("x");
        assert!(!local.is_enabled());
        local.record(5);
        drop(local);
        let standalone = LocalRecorder::disabled();
        standalone.record_n(1, 2);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cirlearn-telemetry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn flight_recorder_captures_events_without_a_trace_stream() {
        let t = Telemetry::recording();
        assert!(!t.is_tracing(), "no --trace attached");
        {
            let _span = t.span("learn");
            t.event(Level::Debug, "expanding");
            let local = t.trace_local().expect("flight-only local exists");
            local.emit("node", &[("depth", Json::from(2u64))]);
        }
        let lines: String = t
            .flight()
            .expect("always-on recorder")
            .snapshot_lines()
            .into_iter()
            .map(|(_, text)| text)
            .collect();
        for expected in ["span_open", "event", "node", "span_close"] {
            assert!(
                lines.contains(&format!("\"kind\":\"{expected}\"")),
                "flight ring is missing {expected}: {lines}"
            );
        }
        for line in lines.lines() {
            Json::parse(line).expect("every ring line is valid JSON");
        }
    }

    #[test]
    fn dump_flight_writes_a_parseable_jsonl_snapshot() {
        let dir = scratch_dir("dump");
        let path = dir.join("flight.jsonl");
        let t = Telemetry::recording();
        t.set_flight_dump_path(Some(path.clone()));
        {
            let _scope = t.output_scope(1);
            let _span = t.span("fbdt");
            t.record_oracle_queries(10, 500);
        }
        t.set_aig_nodes(7);
        let written = t.dump_flight("test").expect("dump path set");
        assert_eq!(written, path);
        assert_eq!(t.counter(counters::FLIGHT_DUMPS), 1);
        let text = std::fs::read_to_string(&path).expect("dump exists");
        let mut kinds = Vec::new();
        let mut last_t_us_by_tid: BTreeMap<u64, u64> = BTreeMap::new();
        for line in text.lines() {
            let parsed = Json::parse(line).expect("dump line parses");
            kinds.push(
                parsed
                    .get("kind")
                    .and_then(Json::as_str)
                    .expect("kind")
                    .to_owned(),
            );
            let tid = parsed.get("tid").and_then(Json::as_u64).expect("tid");
            let t_us = parsed.get("t_us").and_then(Json::as_u64).expect("t_us");
            let prev = last_t_us_by_tid.entry(tid).or_insert(0);
            assert!(t_us >= *prev, "per-tid timestamps are monotone: {line}");
            *prev = t_us;
        }
        let flight_pos = kinds.iter().position(|k| k == "flight");
        assert!(flight_pos.is_some(), "dump carries the flight marker");
        assert!(kinds.iter().any(|k| k == "metrics"), "final metrics line");
        assert!(kinds.iter().any(|k| k == "attr"), "attribution trailer");
        assert!(kinds.iter().any(|k| k == "span_open"), "ring content");
        let flight_line = text.lines().find(|l| l.contains("\"flight\"")).expect("");
        let parsed = Json::parse(flight_line).expect("parses");
        assert_eq!(parsed.get("reason").and_then(Json::as_str), Some("test"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_flight_without_a_path_is_a_clean_no_op() {
        let t = Telemetry::recording();
        t.event(Level::Info, "hello");
        assert_eq!(t.dump_flight("test"), None);
        assert_eq!(Telemetry::disabled().dump_flight("test"), None);
    }

    #[test]
    fn disabled_flight_recorder_stops_the_tee() {
        let t = Telemetry::recording();
        t.disable_flight();
        assert!(t.flight().is_none());
        assert!(
            t.trace_local().is_none(),
            "no trace stream and no flight: nothing to record into"
        );
        let dir = scratch_dir("flight-off");
        t.set_flight_dump_path(Some(dir.join("never.jsonl")));
        assert_eq!(t.dump_flight("test"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_channel_rewrites_snapshots_and_finalizes_done() {
        let dir = scratch_dir("status");
        let path = dir.join("status.json");
        let t = Telemetry::recording();
        t.set_status_path(Some(path.clone()));
        t.set_meta("case", "case_42");
        t.set_progress(2, 8);
        {
            let _scope = t.output_scope(3);
            let _span = t.span("fbdt");
            t.record_oracle_queries(50, 2_000);
        }
        t.emit_metrics_snapshot();
        let snap = crate::StatusSnapshot::parse(
            &std::fs::read_to_string(&path).expect("status file written"),
        )
        .expect("status parses");
        assert_eq!(snap.pid, std::process::id() as u64);
        assert_eq!(snap.meta.get("case").map(String::as_str), Some("case_42"));
        assert_eq!(snap.queries, 50);
        assert_eq!(snap.outputs_done, 2);
        assert_eq!(snap.outputs_total, 8);
        assert!(!snap.done);
        assert_eq!(snap.attribution.len(), 1);
        assert_eq!(snap.attribution[0].stage, "fbdt");
        assert_eq!(snap.attribution[0].output, Some(3));
        t.finalize_status();
        let done = crate::StatusSnapshot::parse(
            &std::fs::read_to_string(&path).expect("final status written"),
        )
        .expect("final status parses");
        assert!(done.done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_attribution_is_top_k_by_query_ns() {
        let dir = scratch_dir("status-topk");
        let path = dir.join("status.json");
        let t = Telemetry::recording();
        t.set_status_path(Some(path.clone()));
        for output in 0..10u64 {
            let _scope = t.output_scope(output as usize);
            let _span = t.span("fbdt");
            // Later outputs are more expensive, so they must win.
            t.record_oracle_queries(1, 1_000 * (output + 1));
        }
        t.emit_metrics_snapshot();
        let snap = crate::StatusSnapshot::parse(&std::fs::read_to_string(&path).expect("written"))
            .expect("parses");
        assert_eq!(snap.attribution.len(), crate::StatusSnapshot::TOP_K);
        assert_eq!(snap.attribution[0].output, Some(9));
        assert!(snap
            .attribution
            .windows(2)
            .all(|w| w[0].query_ns >= w[1].query_ns));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_and_flight_both_see_hot_path_events() {
        use crate::trace::TraceWriter;
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let t = Telemetry::recording();
        t.set_trace(trace);
        {
            let _span = t.span("fbdt");
            let local = t.trace_local().expect("tracing");
            local.emit("node", &[("depth", Json::from(1u64))]);
        }
        t.flush_trace();
        assert!(sink.take_string().contains("\"node\""));
        let ring: String = t
            .flight()
            .expect("recorder on")
            .snapshot_lines()
            .into_iter()
            .map(|(_, text)| text)
            .collect();
        assert!(ring.contains("\"node\""), "flight ring also got it");
    }

    #[test]
    fn force_closed_spans_emit_balanced_close_events() {
        use crate::trace::TraceWriter;
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let t = Telemetry::recording();
        t.set_trace(trace);
        let outer = t.span("outer");
        let inner = t.span("inner");
        drop(outer); // force-closes `inner` first
        drop(inner); // double close: ignored
        let text = sink.take_string();
        let opens = text.lines().filter(|l| l.contains("span_open")).count();
        let closes = text.lines().filter(|l| l.contains("span_close")).count();
        assert_eq!(opens, 2);
        assert_eq!(closes, 2);
    }
}
