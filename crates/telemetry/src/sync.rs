//! Atomics abstraction so the lock-free histogram can run both on real
//! `std::sync::atomic` types and under the `loom` model checker.
//!
//! [`Histogram`](crate::Histogram) performs only relaxed loads and
//! read-modify-write ops, captured here as the [`Atomic64`] trait. The
//! production build instantiates it with [`std::sync::atomic::AtomicU64`];
//! the concurrency tests instantiate it with `loom::sync::atomic::AtomicU64`,
//! whose every operation is a scheduling point the model checker branches on.
//! Building the whole crate with `RUSTFLAGS="--cfg loom"` flips the default
//! atomic ([`DefaultAtomic64`]) to the loom type.

use std::sync::atomic::Ordering;

/// The 64-bit atomic operations the histogram needs. All operations use
/// relaxed ordering: the histogram is a commutative accumulator whose
/// invariants do not depend on inter-variable ordering beyond what the
/// publication discipline in `record_n`/`merge` provides.
pub trait Atomic64: Send + Sync {
    /// A new atomic holding `value`.
    fn new(value: u64) -> Self;
    /// Relaxed load.
    fn load(&self) -> u64;
    /// Relaxed wrapping add; returns the previous value.
    fn fetch_add(&self, delta: u64) -> u64;
    /// Relaxed minimum; returns the previous value.
    fn fetch_min(&self, value: u64) -> u64;
    /// Relaxed maximum; returns the previous value.
    fn fetch_max(&self, value: u64) -> u64;
}

impl Atomic64 for std::sync::atomic::AtomicU64 {
    fn new(value: u64) -> Self {
        std::sync::atomic::AtomicU64::new(value)
    }

    fn load(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }

    fn fetch_add(&self, delta: u64) -> u64 {
        self.fetch_add(delta, Ordering::Relaxed)
    }

    fn fetch_min(&self, value: u64) -> u64 {
        self.fetch_min(value, Ordering::Relaxed)
    }

    fn fetch_max(&self, value: u64) -> u64 {
        self.fetch_max(value, Ordering::Relaxed)
    }
}

impl Atomic64 for loom::sync::atomic::AtomicU64 {
    fn new(value: u64) -> Self {
        loom::sync::atomic::AtomicU64::new(value)
    }

    fn load(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }

    fn fetch_add(&self, delta: u64) -> u64 {
        self.fetch_add(delta, Ordering::Relaxed)
    }

    fn fetch_min(&self, value: u64) -> u64 {
        self.fetch_min(value, Ordering::Relaxed)
    }

    fn fetch_max(&self, value: u64) -> u64 {
        self.fetch_max(value, Ordering::Relaxed)
    }
}

/// The atomic type backing [`Histogram`](crate::Histogram): the real
/// `std` atomic normally, the loom model-checked atomic under `--cfg loom`.
#[cfg(not(loom))]
pub type DefaultAtomic64 = std::sync::atomic::AtomicU64;

/// The atomic type backing [`Histogram`](crate::Histogram): the real
/// `std` atomic normally, the loom model-checked atomic under `--cfg loom`.
#[cfg(loom)]
pub type DefaultAtomic64 = loom::sync::atomic::AtomicU64;
