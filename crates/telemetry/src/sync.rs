//! The crate's single synchronization surface, switchable at compile
//! time between three backends:
//!
//! - **default** — real `std::sync` types: zero-overhead production
//!   builds;
//! - **`--cfg loom`** — the vendored weak-memory model checker: every
//!   atomic op becomes a scheduling point and every load a value branch
//!   point, so `cargo test --test loom_* ` explores interleavings *and*
//!   stale-read behaviors exhaustively (see `vendor/loom`);
//! - **`--cfg race`** — the vendored happens-before race detector:
//!   real full-speed threads with vector clocks riding alongside, so
//!   `cargo test --test race_*` panics with both stacks when a run
//!   exhibits an unsynchronized conflicting pair (see `vendor/tsan`).
//!
//! Everything in this crate that synchronizes imports from here instead
//! of naming `std::sync` / `std::sync::atomic` directly — enforced by
//! `cirlearn-lint`'s atomic-alias rule — so the concurrency tests run
//! the *exact* production code path with no parallel type plumbing.
//!
//! Invariant for the loom backend: `Mutex` stays the `std` mutex there
//! (the shim serializes model threads, so a lock held across code with
//! no scheduling points cannot block anyone), which requires critical
//! sections to contain **no atomic operations**. Keep atomics outside
//! mutex-guarded regions — the histogram and trace paths already do.
//
// cirlearn-lint: allow(atomic-alias) — this module *is* the alias; it is
// the one place in the crate allowed to name the backend sync types.

#[cfg(all(loom, race))]
compile_error!("--cfg loom and --cfg race are mutually exclusive backends");

#[cfg(not(any(loom, race)))]
mod backend {
    pub use std::sync::{Arc, Mutex, MutexGuard, Weak};

    /// Atomic types and fences (std backend).
    pub mod atomic {
        pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

#[cfg(loom)]
mod backend {
    pub use loom::sync::Arc;
    pub use std::sync::{Mutex, MutexGuard, Weak};

    /// Atomic types and fences (loom weak-memory model backend).
    pub mod atomic {
        pub use loom::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

#[cfg(race)]
mod backend {
    pub use tsan::sync::{Arc, Mutex, MutexGuard, Weak};

    /// Atomic types and fences (race-detector backend).
    pub mod atomic {
        pub use tsan::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

pub use backend::*;
