//! A log-bucketed latency histogram.
//!
//! [`Histogram`] records `u64` samples (by convention: nanoseconds)
//! into logarithmically spaced buckets — base-2 octaves split into
//! [`SUB_BUCKETS`] linear sub-buckets, so any bucket's width is at most
//! 1/[`SUB_BUCKETS`] (12.5%) of its lower bound. That bounds the error
//! of every reported quantile to one bucket while keeping the whole
//! structure a fixed 496-slot array: no allocation per sample, no
//! rebinning, and two histograms merge by adding buckets.
//!
//! Recording is lock-free: buckets are relaxed atomics, so a shared
//! `Arc<Histogram>` can be hammered from a hot loop without taking the
//! telemetry mutex per sample. Quantile reads are taken from a relaxed
//! snapshot and are approximate under concurrent writes — exact once
//! the writers are done, which is when reports are taken.
//!
//! # Publication discipline
//!
//! Readers may run concurrently with writers, so the writer updates
//! `min`/`max`/buckets/`sum` **before** bumping `count` — relaxed
//! read-modify-writes published by a `Release` `count` increment — and
//! readers gate on an `Acquire` load of `count` first. A reader that
//! observes `count > 0` therefore synchronizes with the writers behind
//! those samples and never sees the `u64::MAX` min sentinel of an
//! empty histogram. The discipline is model-checked under the
//! weak-memory loom shim (`crates/telemetry/tests/loom_histogram.rs`,
//! built with `--cfg loom`) and exercised under the happens-before
//! race detector (`--cfg race`): the atomics come from [`crate::sync`],
//! so the exact production code path runs under all three backends.
//!
//! # Examples
//!
//! ```
//! use cirlearn_telemetry::Histogram;
//!
//! let h = Histogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 1000);
//! assert_eq!(h.max(), 1000);
//! // p50 of 1..=1000 is 500; the log bucket puts it within 12.5%.
//! let p50 = h.quantile(0.5);
//! assert!((437..=563).contains(&p50), "p50 estimate {p50}");
//! ```

use std::time::Duration;

use crate::json::Json;
use crate::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per base-2 octave (8 → ≤ 12.5% bucket width).
pub const SUB_BUCKETS: u64 = 8;
const SUB_BITS: u32 = 3; // log2(SUB_BUCKETS)
/// Total bucket count: an exact linear range `[0, SUB_BUCKETS)` plus
/// `SUB_BUCKETS` sub-buckets for each of the remaining 61 octaves.
pub const NUM_BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// The bucket index a value lands in. Total order: bucket indices are
/// monotone in the value.
pub fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let h = 63 - value.leading_zeros(); // floor(log2(value)) >= SUB_BITS
    let octave = (h - SUB_BITS) as u64;
    let sub = (value >> (h - SUB_BITS)) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
    (SUB_BUCKETS + octave * SUB_BUCKETS + sub) as usize
}

/// The smallest value that lands in bucket `index` (the bucket's lower
/// bound, which is also the value [`Histogram::quantile`] reports for
/// samples inside it).
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << octave
}

/// A mergeable log-bucketed histogram, generic over its bucket count so
/// the concurrency tests can run the exact production code path with a
/// small `N` that keeps the model-checked schedule space tractable. The
/// atomic type comes from [`crate::sync`] (std / loom / tsan, chosen at
/// compile time). Use the [`Histogram`] alias everywhere outside
/// concurrency tests.
///
/// With `N < NUM_BUCKETS`, values past the last bucket clamp into it;
/// `N` must not exceed [`NUM_BUCKETS`].
#[derive(Debug)]
pub struct RawHistogram<const N: usize = NUM_BUCKETS> {
    buckets: Box<[AtomicU64; N]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// The production histogram: the full bucket range over the backend
/// atomics selected by [`crate::sync`].
pub type Histogram = RawHistogram<NUM_BUCKETS>;

impl<const N: usize> Default for RawHistogram<N> {
    fn default() -> Self {
        RawHistogram::new()
    }
}

impl<const N: usize> RawHistogram<N> {
    /// An empty histogram.
    pub fn new() -> Self {
        // panic-ok: compile-time-constant guard, once per histogram
        // construction.
        assert!(N > 0 && N <= NUM_BUCKETS, "bucket count {N} out of range");
        // Atomics are not Copy; build the array through a Vec.
        let buckets: Vec<AtomicU64> = (0..N).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; N]> = match buckets.into_boxed_slice().try_into() {
            Ok(b) => b,
            // panic-ok: the Vec was built with exactly N entries.
            Err(_) => unreachable!("length matches N"),
        };
        RawHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value in O(1) — used for
    /// attributing a batch's elapsed time across its items.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        // Publication order: extrema and buckets first, `count` last with
        // Release. Readers gate on an Acquire load of `count`, so once
        // they see these samples in the count they synchronize with this
        // writer and min/max are already past the empty-histogram
        // sentinels.
        // relaxed-ok: published by the Release `count` increment below.
        self.min.fetch_min(value, Ordering::Relaxed);
        // relaxed-ok: published by the Release `count` increment below.
        self.max.fetch_max(value, Ordering::Relaxed);
        // relaxed-ok: published by the Release `count` increment below.
        // panic-ok: the `.min(N - 1)` clamps the bucket in bounds.
        self.buckets[bucket_of(value).min(N - 1)].fetch_add(n, Ordering::Relaxed);
        // relaxed-ok: published by the Release `count` increment below.
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Release);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`,
    /// ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples. The Acquire load is the reader side
    /// of the publication discipline: it synchronizes with every
    /// Release increment whose samples it observes.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        // Check `count` before touching `min`: the writer publishes count
        // last with Release, so a nonzero Acquire-loaded count guarantees
        // the sentinel was replaced *and* that replacement is visible.
        // (Reading `min` first raced: the writer could complete between
        // the two loads and the stale u64::MAX sentinel leaked out.)
        if self.count() == 0 {
            return 0;
        }
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample (exact, not bucketed; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the lower bound
    /// of the bucket holding the rank-`ceil(q * count)` sample — within
    /// one bucket (≤ 12.5%) of the exact quantile. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based; q=0 maps to rank 1.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        if rank == count {
            // The top-ranked sample is the maximum, tracked exactly.
            return self.max();
        }
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Cap at the exact max: the top bucket's lower bound
                // can never exceed the largest sample, but intermediate
                // buckets under concurrent writes could.
                return bucket_lower_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every sample of `other` into `self` — equivalent (bucket
    /// for bucket) to having recorded the union of both sample sets.
    pub fn merge(&self, other: &RawHistogram<N>) {
        // Acquire-gate on the source count *first*: it synchronizes with
        // the writers behind those samples, so the bucket/extrema loads
        // below see everything the count covers.
        let n = other.count();
        if n == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let b = theirs.load(Ordering::Relaxed);
            if b > 0 {
                // relaxed-ok: published by the Release `count` add below.
                mine.fetch_add(b, Ordering::Relaxed);
            }
        }
        // Same publication order as `record_n`: count strictly last.
        // relaxed-ok: published by the Release `count` add below.
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        // relaxed-ok: published by the Release `count` add below.
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        // relaxed-ok: published by the Release `count` add below.
        self.max.fetch_max(other.max(), Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Release);
    }

    /// Snapshots the headline statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

impl<const N: usize> Clone for RawHistogram<N> {
    fn clone(&self) -> Self {
        let h = RawHistogram::new();
        h.merge(self);
        h
    }
}

/// Headline statistics of one [`Histogram`]: the form that goes into
/// run reports and `BENCH_*.json`. Values are in the histogram's
/// recording unit (nanoseconds for the pipeline's latency histograms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (exact).
    pub min: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Median estimate (bucket lower bound).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Serializes to the run-report JSON form.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min)),
            ("max", Json::from(self.max)),
            ("p50", Json::from(self.p50)),
            ("p90", Json::from(self.p90)),
            ("p99", Json::from(self.p99)),
        ])
    }

    /// Parses the run-report JSON form.
    pub fn from_json(json: &Json) -> Result<HistogramSummary, String> {
        let field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing u64 field histogram.{name}"))
        };
        Ok(HistogramSummary {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
            p50: field("p50")?,
            p90: field("p90")?,
            p99: field("p99")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(i);
            if let Some(p) = prev {
                assert!(lo > p, "bucket {i} bound {lo} not above {p}");
            }
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i} maps back");
            prev = Some(lo);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_width_is_bounded() {
        // Every bucket's width is at most 1/SUB_BUCKETS of its lower
        // bound (for buckets past the exact linear range).
        for i in SUB_BUCKETS as usize..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_lower_bound(i + 1);
            assert!(
                (hi - lo).saturating_mul(SUB_BUCKETS) <= lo,
                "bucket {i}: [{lo}, {hi}) wider than {}%",
                100 / SUB_BUCKETS
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0, "empty min must be 0, not the u64::MAX sentinel");
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn empty_histogram_min_survives_merge_and_clone() {
        // Merging an empty histogram (whose internal min is the
        // u64::MAX sentinel) must not poison the destination's min,
        // and empty clones must still report 0.
        let dst = Histogram::new();
        let empty = Histogram::new();
        dst.merge(&empty);
        assert_eq!(dst.min(), 0);
        assert_eq!(dst.max(), 0);
        assert_eq!(empty.clone().min(), 0);
        dst.record(42);
        dst.merge(&empty);
        assert_eq!(dst.min(), 42, "empty merge must not disturb a real min");
        assert_eq!(dst.summary().min, 42);
    }

    #[test]
    fn quantiles_of_uniform_samples_are_close() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = h.quantile(q);
            assert_eq!(
                bucket_of(got),
                bucket_of(exact),
                "q={q}: estimate {got} not in the exact value's bucket ({exact})"
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 1_000_000, u64::MAX] {
            a.record(v);
            u.record(v);
        }
        for v in [3u64, 99, 12_345, 1 << 40] {
            b.record_n(v, 3);
            u.record_n(v, 3);
        }
        a.merge(&b);
        assert_eq!(a.summary(), u.summary());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(42, 5);
        for _ in 0..5 {
            b.record(42);
        }
        assert_eq!(a.summary(), b.summary());
        a.record_n(7, 0); // no-op
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn durations_record_as_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(5));
        assert_eq!(h.min(), 5_000);
        assert_eq!(h.max(), 5_000);
        // Saturation instead of overflow for absurd durations.
        h.record_duration(Duration::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let h = Histogram::new();
        for v in [10u64, 200, 3_000, 3_000, 40_000] {
            h.record(v);
        }
        let s = h.summary();
        let text = s.to_json().to_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(HistogramSummary::from_json(&parsed).expect("schema"), s);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000] {
            h.record_n(v, 10);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn clone_is_an_independent_copy() {
        let a = Histogram::new();
        a.record(5);
        let b = a.clone();
        b.record(9);
        assert_eq!(a.count(), 1);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn small_raw_histogram_clamps_into_its_top_bucket() {
        // The loom tests use a tiny bucket count; values past the last
        // bucket must clamp, not index out of range.
        let h: RawHistogram<4> = RawHistogram::new();
        h.record(2);
        h.record(1_000_000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 2);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }
}
