//! Telemetry substrate for the cirlearn pipeline.
//!
//! This crate gives the learning pipeline one observability spine
//! instead of scattered `eprintln!`s:
//!
//! - **Spans** ([`Telemetry::span`]): RAII stage guards that time
//!   nested pipeline stages (`support`, `fbdt`, `optimize`, ...) and
//!   attribute counter activity to them.
//! - **Counters** ([`Telemetry::add`], [`counters`]): monotonic
//!   counters for oracle queries, FBDT expansion, cube collection,
//!   espresso calls and optimization gate deltas. Queries are counted
//!   at the source by the oracle crate's `InstrumentedOracle`, so the
//!   top-level stage breakdown of `oracle.queries` sums to the run's
//!   total query count by construction.
//! - **Histograms** ([`Histogram`], [`histograms`]): lock-free
//!   log-bucketed latency distributions (p50/p90/p99/max) for oracle
//!   round-trips, FBDT node expansion and synth passes.
//! - **Traces** ([`TraceWriter`]): a JSONL event stream (span
//!   open/close, node expansions, passes, checkpoints, events) with
//!   monotonic timestamps, for offline replay and flamegraphs.
//! - **Reporters** ([`Reporter`]): pluggable human-readable event
//!   sinks; [`StderrReporter`] replaces the old `--verbose` output.
//! - **Run reports** ([`RunReport`]): machine-readable JSON snapshots
//!   (`--report <path>` in the CLI) with per-stage wall clock, counter
//!   breakdowns, per-pass AIG deltas, budget checkpoints and
//!   per-output records.
//! - **Cost attribution** ([`Telemetry::output_scope`],
//!   [`AttributionRecord`]): a per-(stage, output) ledger of oracle
//!   queries, query nanoseconds and gates built, fed by the span
//!   context that `InstrumentedOracle` records into, emitted in the
//!   report and as `attr` trace events.
//! - **Trace analysis** ([`analysis`]): offline parsing of trace
//!   streams into span trees, hot-span summaries, critical paths,
//!   Chrome trace-event exports and noise-floored run diffs — the
//!   engine behind the `cirlearn trace` subcommands.
//! - **Flight recorder** ([`FlightRecorder`]): always-on bounded
//!   per-thread rings of recent trace events, dumped atomically as
//!   JSONL on panic, fault, deadline, suspension or SIGUSR1 — a black
//!   box for runs that were not started with `--trace`.
//! - **Live status** ([`StatusSnapshot`]): the compact run-progress
//!   snapshot `--status <path>` rewrites atomically every 250ms and
//!   `cirlearn top` renders.
//!
//! The [`Telemetry`] handle is cheap to clone and share;
//! [`Telemetry::disabled`] is a no-op handle so instrumented code pays
//! nothing when observation is off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod persist;
mod report;
mod reporter;
mod status;
pub mod sync;
mod telemetry;
mod trace;

pub use crate::flight::{FlightRecorder, FlightRing, DEFAULT_RING_BYTES};
pub use crate::histogram::{Histogram, HistogramSummary, RawHistogram};
pub use crate::persist::write_atomic;
pub use crate::report::{
    AttributionRecord, CheckpointReport, ExecReport, FaultsReport, OutputReport, PassReport,
    RunReport, StageReport, SCHEMA_VERSION,
};
pub use crate::reporter::{BufferReporter, Level, NullReporter, Reporter, StderrReporter};
pub use crate::status::{StatusAttr, StatusSnapshot, STATUS_SCHEMA_VERSION};
pub use crate::telemetry::{
    counters, histograms, HistogramHandle, LocalRecorder, OutputScope, Span, Telemetry,
};
pub use crate::trace::{current_tid, SharedBuffer, TraceLocal, TraceWriter};
