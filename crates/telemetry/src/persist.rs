//! Crash-safe file persistence: atomic tmp + fsync + rename writes.
//!
//! Every machine-readable artifact the pipeline produces — run
//! reports, BENCH JSON, trace exports, checkpoints — goes through
//! [`write_atomic`] so a crash (or SIGKILL) mid-flush can never leave
//! a torn, truncated file behind. The protocol is the classic one:
//!
//! 1. write the full contents to `<path>.tmp` in the target directory,
//! 2. `fsync` the temporary file so the bytes are durable,
//! 3. `rename` it over the destination (atomic on POSIX),
//! 4. `fsync` the parent directory so the rename itself is durable.
//!
//! Readers therefore observe either the old file or the complete new
//! one, never a prefix.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `contents` (tmp + fsync + rename).
///
/// The temporary file is `<path>.tmp` in the same directory, so the
/// final rename never crosses a filesystem boundary. On any error the
/// destination is left untouched (a stale `.tmp` may remain; it is
/// overwritten by the next attempt).
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(contents.as_ref())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs the directory containing `path` so a completed rename
/// survives power loss. Best-effort: some filesystems (and all
/// non-unix platforms) refuse directory handles, and by this point the
/// data itself is already durable.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cirlearn-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn writes_new_file() {
        let dir = scratch_dir("new");
        let path = dir.join("report.json");
        write_atomic(&path, b"{\"ok\":true}").expect("atomic write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"{\"ok\":true}");
        assert!(
            !tmp_path(&path).exists(),
            "tmp file must be renamed away on success"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_existing_file_completely() {
        let dir = scratch_dir("replace");
        let path = dir.join("bench.json");
        write_atomic(&path, "old contents, much longer than the new ones").expect("first write");
        write_atomic(&path, "new").expect("second write");
        assert_eq!(std::fs::read_to_string(&path).expect("read back"), "new");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_from_a_crash_is_overwritten() {
        let dir = scratch_dir("stale");
        let path = dir.join("ckpt.json");
        // Simulate a crash that left a half-written tmp file behind.
        std::fs::write(tmp_path(&path), "torn garb").expect("plant stale tmp");
        write_atomic(&path, "complete").expect("atomic write");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read back"),
            "complete"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_on_missing_directory_leaves_no_destination() {
        let dir = scratch_dir("missing").join("nope");
        let path = dir.join("out.json");
        assert!(write_atomic(&path, "x").is_err());
        assert!(!path.exists());
    }
}
