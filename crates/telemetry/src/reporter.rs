//! Event sinks: where human-readable telemetry lines go.

/// Severity / verbosity of an event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The run cannot proceed as requested.
    Error,
    /// Something degraded (budget exhausted, forced leaves, ...).
    Warn,
    /// Stage-level progress, one line per pipeline step.
    Info,
    /// Per-output and per-pass detail (the old `--verbose` output).
    Debug,
    /// Per-node / per-call firehose.
    Trace,
}

impl Level {
    /// Lower-case name, as accepted by `Level`'s [`FromStr`](std::str::FromStr) impl.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" | "verbose" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (error|warn|info|debug|trace)"
            )),
        }
    }
}

/// A sink for telemetry events.
///
/// Implementations decide formatting and destination; the pipeline
/// only calls [`Reporter::event`]. `stage` is the `/`-joined span path
/// active when the event fired (empty outside any span).
pub trait Reporter: Send {
    /// Handles one event.
    fn event(&mut self, level: Level, stage: &str, message: &str);
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullReporter;

impl Reporter for NullReporter {
    fn event(&mut self, _level: Level, _stage: &str, _message: &str) {}
}

/// Writes `[cirlearn level stage] message` lines to stderr, filtering
/// by a minimum level. This replaces the scattered `eprintln!`s the
/// pipeline used to carry.
#[derive(Debug, Clone)]
pub struct StderrReporter {
    max_level: Level,
}

impl StderrReporter {
    /// Reports events up to and including `max_level`.
    pub fn new(max_level: Level) -> Self {
        StderrReporter { max_level }
    }
}

impl Reporter for StderrReporter {
    fn event(&mut self, level: Level, stage: &str, message: &str) {
        if level <= self.max_level {
            if stage.is_empty() {
                // blocking-ok: stderr IS this reporter's sink; events
                // are level-filtered and structural, never per-query.
                eprintln!("[cirlearn {level}] {message}");
            } else {
                // blocking-ok: same as above.
                eprintln!("[cirlearn {level} {stage}] {message}");
            }
        }
    }
}

/// Collects events in memory — for tests and for harnesses that want
/// to post-process the narrative.
#[derive(Debug, Default)]
pub struct BufferReporter {
    events: Vec<(Level, String, String)>,
}

impl BufferReporter {
    /// An empty buffer.
    pub fn new() -> Self {
        BufferReporter::default()
    }

    /// The collected `(level, stage, message)` triples.
    pub fn events(&self) -> &[(Level, String, String)] {
        &self.events
    }
}

impl Reporter for BufferReporter {
    fn event(&mut self, level: Level, stage: &str, message: &str) {
        self.events
            .push((level, stage.to_owned(), message.to_owned()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn level_parsing_accepts_aliases() {
        assert_eq!(Level::from_str("warn"), Ok(Level::Warn));
        assert_eq!(Level::from_str("WARNING"), Ok(Level::Warn));
        assert_eq!(Level::from_str("verbose"), Ok(Level::Debug));
        assert!(Level::from_str("loud").is_err());
    }

    #[test]
    fn buffer_reporter_collects_in_order() {
        let mut r = BufferReporter::new();
        r.event(Level::Info, "a", "first");
        r.event(Level::Debug, "a/b", "second");
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].2, "first");
        assert_eq!(r.events()[1].1, "a/b");
    }
}
