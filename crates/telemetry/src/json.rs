//! A minimal JSON value type with writer and parser.
//!
//! The workspace is built offline (no serde); run reports are simple
//! enough that a small hand-rolled tree suffices. Objects preserve
//! insertion order so reports are stable and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (reports only use values below 2^53, which `f64`
    /// holds exactly).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as usize, if a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as bool, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object's pairs, if an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on one line with no whitespace — the form used for
    /// JSONL streams, where each value must stay on a single line.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Number(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf.
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        // panic-ok: `pos <= bytes.len()` is the parser's cursor
        // invariant (advanced only by matched lengths).
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Reports never emit surrogate pairs; map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    // panic-ok: cursor invariant, as in `eat_keyword`.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    // panic-ok: the `Some(_)` peek guarantees at least
                    // one byte, hence one scalar after the UTF-8 check.
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::object([
            ("name", Json::from("run \"x\"\n")),
            ("count", Json::from(42u64)),
            ("ratio", Json::from(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Array(vec![Json::from(1u64), Json::from("two")]),
            ),
            ("empty", Json::Object(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn compact_form_is_one_line_and_parses_back() {
        let doc = Json::object([
            ("kind", Json::from("span_open")),
            ("t_us", Json::from(12u64)),
            ("fields", Json::Array(vec![Json::Null, Json::Bool(false)])),
            ("note", Json::from("line\nbreak")),
        ]);
        let text = doc.to_compact();
        assert!(!text.contains('\n'), "compact output spans lines: {text}");
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(1234u64).to_pretty().trim(), "1234");
        assert_eq!(Json::from(0.25).to_pretty().trim(), "0.25");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\\u0041\" : [ 1 , -2.5e1 ] } ").expect("parses");
        assert_eq!(
            parsed,
            Json::Object(vec![(
                "aA".to_owned(),
                Json::Array(vec![Json::Number(1.0), Json::Number(-25.0)])
            )])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::object([("k", Json::from(7u64))]);
        assert_eq!(doc.get("k").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::from("s").as_str(), Some("s"));
    }
}
