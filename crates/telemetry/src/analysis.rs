//! Offline analysis of JSONL trace streams.
//!
//! This module is the engine behind the `cirlearn trace` subcommands:
//! it parses the event stream a [`TraceWriter`](crate::TraceWriter)
//! produced, rebuilds the per-thread span forest, and derives
//!
//! - [`summarize`]: hot-span statistics (total/self time), the
//!   per-(stage, output) attribution table from `attr` events, and the
//!   critical path through the span tree,
//! - [`to_chrome_trace`]: a Chrome trace-event JSON document loadable
//!   in Perfetto / `chrome://tracing`,
//! - [`diff`]: a regression comparison of two summaries with the same
//!   noise-floor discipline as `bench compare` (relative threshold AND
//!   absolute floor, so tiny runs do not flag).
//!
//! Everything here is pure and file-format driven — analyses run on
//! traces from crashed runs too, where unclosed spans are closed at
//! the stream's final timestamp.

use std::collections::BTreeMap;

use crate::json::Json;

/// One parsed trace event: the standard envelope plus the full parsed
/// object for kind-specific fields.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Microseconds since the trace started (monotone per `tid`).
    pub t_us: u64,
    /// Emitting thread's stable trace id (0 for pre-tid streams).
    pub tid: u64,
    /// Event kind (`span_open`, `node`, `metrics`, `attr`, ...).
    pub kind: String,
    /// `/`-joined span path active when the event fired.
    pub stage: String,
    /// The full parsed line, for kind-specific fields.
    pub json: Json,
}

impl TraceEvent {
    /// A kind-specific u64 field.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        self.json.get(name).and_then(Json::as_u64)
    }

    /// A kind-specific string field.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        self.json.get(name).and_then(Json::as_str)
    }
}

/// Parses a JSONL trace stream. Every line must be a JSON object with
/// the `t_us`/`kind`/`stage` envelope; `tid` defaults to 0 for
/// streams written before thread ids existed.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t_us = json
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: missing t_us", i + 1))?;
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing kind", i + 1))?
            .to_owned();
        let stage = json
            .get("stage")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing stage", i + 1))?
            .to_owned();
        let tid = json.get("tid").and_then(Json::as_u64).unwrap_or(0);
        events.push(TraceEvent {
            t_us,
            tid,
            kind,
            stage,
            json,
        });
    }
    Ok(events)
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span id from the stream.
    pub id: u64,
    /// Span name (one path segment).
    pub name: String,
    /// Full `/`-joined path.
    pub path: String,
    /// Thread the span ran on.
    pub tid: u64,
    /// Open timestamp.
    pub start_us: u64,
    /// Close timestamp (the stream's last timestamp for spans left
    /// open by a crash).
    pub end_us: u64,
    /// Nested spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall clock between open and close.
    pub fn elapsed_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Elapsed time not covered by child spans.
    pub fn self_us(&self) -> u64 {
        let children: u64 = self.children.iter().map(SpanNode::elapsed_us).sum();
        self.elapsed_us().saturating_sub(children)
    }
}

/// Rebuilds the span forest from `span_open`/`span_close` events,
/// keeping a separate stack per `tid`. Spans still open when the
/// stream ends (a crashed run) are closed at the final timestamp.
pub fn span_forest(events: &[TraceEvent]) -> Vec<SpanNode> {
    let last_t = events.iter().map(|e| e.t_us).max().unwrap_or(0);
    let mut forest: Vec<SpanNode> = Vec::new();
    let mut stacks: BTreeMap<u64, Vec<SpanNode>> = BTreeMap::new();
    let attach = |stack: &mut Vec<SpanNode>, forest: &mut Vec<SpanNode>, node: SpanNode| match stack
        .last_mut()
    {
        Some(parent) => parent.children.push(node),
        None => forest.push(node),
    };
    for ev in events {
        match ev.kind.as_str() {
            "span_open" => {
                let stack = stacks.entry(ev.tid).or_default();
                stack.push(SpanNode {
                    id: ev.field_u64("id").unwrap_or(u64::MAX),
                    name: ev.field_str("name").unwrap_or("?").to_owned(),
                    path: ev.stage.clone(),
                    tid: ev.tid,
                    start_us: ev.t_us,
                    end_us: ev.t_us,
                    children: Vec::new(),
                });
            }
            "span_close" => {
                let id = ev.field_u64("id").unwrap_or(u64::MAX);
                let stack = stacks.entry(ev.tid).or_default();
                // The writer emits balanced closes, but be defensive:
                // pop (and close) anything above a mismatched id.
                while let Some(mut node) = stack.pop() {
                    node.end_us = ev.t_us;
                    let matched = node.id == id;
                    attach(stack, &mut forest, node);
                    if matched {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    for (_, mut stack) in stacks {
        while let Some(mut node) = stack.pop() {
            node.end_us = last_t;
            attach(&mut stack, &mut forest, node);
        }
    }
    forest
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Full `/`-joined path.
    pub path: String,
    /// Number of spans on this path.
    pub calls: u64,
    /// Total elapsed over all calls.
    pub total_us: u64,
    /// Total elapsed not covered by child spans.
    pub self_us: u64,
    /// Longest single call.
    pub max_us: u64,
}

/// Aggregates the forest per path, sorted by self time (descending).
pub fn span_stats(forest: &[SpanNode]) -> Vec<SpanStat> {
    fn walk(node: &SpanNode, acc: &mut BTreeMap<String, SpanStat>) {
        let stat = acc.entry(node.path.clone()).or_insert_with(|| SpanStat {
            path: node.path.clone(),
            ..SpanStat::default()
        });
        stat.calls += 1;
        stat.total_us += node.elapsed_us();
        stat.self_us += node.self_us();
        stat.max_us = stat.max_us.max(node.elapsed_us());
        for child in &node.children {
            walk(child, acc);
        }
    }
    let mut acc = BTreeMap::new();
    for node in forest {
        walk(node, &mut acc);
    }
    let mut stats: Vec<SpanStat> = acc.into_values().collect();
    stats.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.path.cmp(&b.path)));
    stats
}

/// One row of the attribution table (from an `attr` trace event).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionRow {
    /// Top-level stage name.
    pub stage: String,
    /// Output index, or `None` for shared work.
    pub output: Option<u64>,
    /// Oracle queries attributed to this key.
    pub queries: u64,
    /// Total oracle nanoseconds attributed to this key.
    pub query_ns: u64,
    /// AND gates built under this key.
    pub gates: u64,
}

/// Collects `attr` events into the attribution table. The ledger may
/// be emitted more than once (a final flush after an earlier periodic
/// one); the *last* event per (stage, output) key wins, since the
/// ledger is cumulative.
pub fn attribution_rows(events: &[TraceEvent]) -> Vec<AttributionRow> {
    let mut rows: BTreeMap<(String, Option<u64>), AttributionRow> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.kind == "attr") {
        let output = ev.field_u64("output");
        rows.insert(
            (ev.stage.clone(), output),
            AttributionRow {
                stage: ev.stage.clone(),
                output,
                queries: ev.field_u64("queries").unwrap_or(0),
                query_ns: ev.field_u64("query_ns").unwrap_or(0),
                gates: ev.field_u64("gates").unwrap_or(0),
            },
        );
    }
    rows.into_values().collect()
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Span path of this hop.
    pub path: String,
    /// Elapsed time of the hop's span.
    pub elapsed_us: u64,
    /// Elapsed time not covered by children.
    pub self_us: u64,
}

/// Extracts the critical path: starting from the longest root span,
/// repeatedly descend into the longest child.
pub fn critical_path(forest: &[SpanNode]) -> Vec<CriticalHop> {
    let mut path = Vec::new();
    let mut current = forest.iter().max_by_key(|n| n.elapsed_us());
    while let Some(node) = current {
        path.push(CriticalHop {
            path: node.path.clone(),
            elapsed_us: node.elapsed_us(),
            self_us: node.self_us(),
        });
        current = node.children.iter().max_by_key(|n| n.elapsed_us());
    }
    path
}

/// Everything [`summarize`] derives from one trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of parsed events.
    pub events: usize,
    /// Last timestamp in the stream.
    pub duration_us: u64,
    /// Distinct thread ids observed.
    pub tids: Vec<u64>,
    /// Event counts per kind.
    pub counts_by_kind: BTreeMap<String, u64>,
    /// Per-path span statistics, hottest (self time) first.
    pub spans: Vec<SpanStat>,
    /// The attribution table, sorted by stage then output.
    pub attribution: Vec<AttributionRow>,
    /// The critical path through the span forest.
    pub critical_path: Vec<CriticalHop>,
}

impl TraceSummary {
    /// Total queries across the attribution table — equals the run's
    /// `LearnResult::queries` because top-level stages partition it.
    pub fn total_attributed_queries(&self) -> u64 {
        self.attribution.iter().map(|a| a.queries).sum()
    }

    /// Wall time not covered by any top-level span — instrumentation
    /// blind spots. Saturates to zero when top-level spans overlap
    /// across threads (their totals then exceed the wall clock).
    pub fn unattributed_us(&self) -> u64 {
        let covered: u64 = self
            .spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.total_us)
            .sum();
        self.duration_us.saturating_sub(covered)
    }

    /// Renders the summary as a human-readable report, listing the
    /// `top_k` hottest spans.
    pub fn render(&self, top_k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events over {:.3}s across {} thread(s)",
            self.events,
            self.duration_us as f64 / 1e6,
            self.tids.len().max(1)
        );
        let kinds: Vec<String> = self
            .counts_by_kind
            .iter()
            .map(|(k, n)| format!("{k} {n}"))
            .collect();
        let _ = writeln!(out, "kinds: {}", kinds.join(", "));

        let _ = writeln!(out, "\nhot spans (by self time):");
        let _ = writeln!(
            out,
            "  {:<24} {:>6} {:>10} {:>10} {:>10}",
            "path", "calls", "total_s", "self_s", "max_s"
        );
        for s in self.spans.iter().take(top_k) {
            let _ = writeln!(
                out,
                "  {:<24} {:>6} {:>10.3} {:>10.3} {:>10.3}",
                s.path,
                s.calls,
                s.total_us as f64 / 1e6,
                s.self_us as f64 / 1e6,
                s.max_us as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "  unattributed (outside any span): {:.3}s",
            self.unattributed_us() as f64 / 1e6
        );

        if !self.attribution.is_empty() {
            let _ = writeln!(out, "\nattribution (stage x output):");
            let _ = writeln!(
                out,
                "  {:<14} {:>6} {:>12} {:>12} {:>8}",
                "stage", "output", "queries", "query_ms", "gates"
            );
            for a in &self.attribution {
                let output = a
                    .output
                    .map(|o| o.to_string())
                    .unwrap_or_else(|| "-".to_owned());
                let _ = writeln!(
                    out,
                    "  {:<14} {:>6} {:>12} {:>12.1} {:>8}",
                    a.stage,
                    output,
                    a.queries,
                    a.query_ns as f64 / 1e6,
                    a.gates
                );
            }
            let _ = writeln!(
                out,
                "  {:<14} {:>6} {:>12}",
                "total",
                "",
                self.total_attributed_queries()
            );
        }

        if !self.critical_path.is_empty() {
            let hops: Vec<String> = self
                .critical_path
                .iter()
                .map(|h| format!("{} {:.3}s", h.path, h.elapsed_us as f64 / 1e6))
                .collect();
            let _ = writeln!(out, "\ncritical path: {}", hops.join(" -> "));
        }
        out
    }
}

/// Merges the summaries of a multi-segment run (one trace stream per
/// checkpoint/resume segment) into one account of the whole run.
///
/// Each segment's attribution ledger is cumulative *within* that
/// segment only — a resumed process restarts its telemetry from zero —
/// so per-(stage, output) queries, times and gates are *summed* across
/// segments, as are span statistics and event counts. The merged query
/// total therefore equals the final `LearnResult::queries` of the
/// resumed run. The critical path of the longest segment (by wall
/// clock) is kept, since paths from different processes cannot be
/// spliced.
pub fn merge_summaries(segments: &[TraceSummary]) -> TraceSummary {
    let mut merged = TraceSummary::default();
    let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
    let mut attr: BTreeMap<(String, Option<u64>), AttributionRow> = BTreeMap::new();
    let mut longest: Option<&TraceSummary> = None;
    for seg in segments {
        merged.events += seg.events;
        merged.duration_us += seg.duration_us;
        for tid in &seg.tids {
            if !merged.tids.contains(tid) {
                merged.tids.push(*tid);
            }
        }
        for (kind, n) in &seg.counts_by_kind {
            *merged.counts_by_kind.entry(kind.clone()).or_insert(0) += n;
        }
        for s in &seg.spans {
            let e = spans.entry(s.path.clone()).or_insert_with(|| SpanStat {
                path: s.path.clone(),
                ..SpanStat::default()
            });
            e.calls += s.calls;
            e.total_us += s.total_us;
            e.self_us += s.self_us;
            e.max_us = e.max_us.max(s.max_us);
        }
        for a in &seg.attribution {
            let e = attr
                .entry((a.stage.clone(), a.output))
                .or_insert_with(|| AttributionRow {
                    stage: a.stage.clone(),
                    output: a.output,
                    ..AttributionRow::default()
                });
            e.queries += a.queries;
            e.query_ns += a.query_ns;
            e.gates += a.gates;
        }
        if longest.is_none_or(|l| seg.duration_us > l.duration_us) {
            longest = Some(seg);
        }
    }
    merged.tids.sort_unstable();
    let mut span_stats: Vec<SpanStat> = spans.into_values().collect();
    span_stats.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.path.cmp(&b.path)));
    merged.spans = span_stats;
    merged.attribution = attr.into_values().collect();
    merged.critical_path = longest.map(|l| l.critical_path.clone()).unwrap_or_default();
    merged
}

/// Builds the full [`TraceSummary`] for a parsed event stream.
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let forest = span_forest(events);
    let mut counts_by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut tids: Vec<u64> = Vec::new();
    for ev in events {
        *counts_by_kind.entry(ev.kind.clone()).or_insert(0) += 1;
        if !tids.contains(&ev.tid) {
            tids.push(ev.tid);
        }
    }
    tids.sort_unstable();
    TraceSummary {
        events: events.len(),
        duration_us: events.iter().map(|e| e.t_us).max().unwrap_or(0),
        tids,
        counts_by_kind,
        spans: span_stats(&forest),
        attribution: attribution_rows(events),
        critical_path: critical_path(&forest),
    }
}

/// Converts a parsed trace into Chrome trace-event JSON (the
/// "JSON Array Format" with a `traceEvents` wrapper), loadable in
/// Perfetto and `chrome://tracing`:
///
/// - every `tid` gets a `"ph": "M"` `thread_name` metadata event (so
///   Perfetto labels the tracks `main` / `cirlearn-N` instead of bare
///   numbers),
/// - spans become `"ph": "X"` complete events with `ts`/`dur`,
/// - `metrics` snapshots become `"ph": "C"` counter tracks,
/// - every other kind becomes a `"ph": "i"` thread-scoped instant.
pub fn to_chrome_trace(events: &[TraceEvent]) -> Json {
    let mut trace_events: Vec<Json> = Vec::new();
    let mut tids: Vec<u64> = Vec::new();
    for ev in events {
        if !tids.contains(&ev.tid) {
            tids.push(ev.tid);
        }
    }
    tids.sort_unstable();
    for &tid in &tids {
        // tid 0 is the process's first telemetry thread — the main
        // thread in every current producer.
        let name = if tid == 0 {
            "main".to_owned()
        } else {
            format!("cirlearn-{tid}")
        };
        trace_events.push(Json::object([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(tid)),
            ("args", Json::object([("name", Json::from(name))])),
        ]));
    }
    fn emit_span(node: &SpanNode, out: &mut Vec<Json>) {
        out.push(Json::object([
            ("name", Json::from(node.name.clone())),
            ("cat", Json::from("span")),
            ("ph", Json::from("X")),
            ("ts", Json::from(node.start_us)),
            ("dur", Json::from(node.elapsed_us())),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(node.tid)),
            (
                "args",
                Json::object([("stage", Json::from(node.path.clone()))]),
            ),
        ]));
        for child in &node.children {
            emit_span(child, out);
        }
    }
    for root in &span_forest(events) {
        emit_span(root, &mut trace_events);
    }
    for ev in events {
        match ev.kind.as_str() {
            "span_open" | "span_close" => {}
            "metrics" => {
                let mut args = Vec::new();
                for key in ["queries_per_s", "aig_nodes", "peak_rss_kb"] {
                    if let Some(v) = ev.field_u64(key) {
                        args.push((key.to_owned(), Json::from(v)));
                    }
                }
                trace_events.push(Json::object([
                    ("name", Json::from("cirlearn")),
                    ("ph", Json::from("C")),
                    ("ts", Json::from(ev.t_us)),
                    ("pid", Json::from(1u64)),
                    ("tid", Json::from(ev.tid)),
                    ("args", Json::Object(args)),
                ]));
            }
            kind => {
                let name = match kind {
                    "event" => ev.field_str("message").unwrap_or(kind).to_owned(),
                    "pass" => format!("pass:{}", ev.field_str("pass").unwrap_or("?")),
                    "checkpoint" => {
                        format!("checkpoint:{}", ev.field_str("label").unwrap_or("?"))
                    }
                    other => other.to_owned(),
                };
                // Carry the kind-specific payload through minus the
                // envelope, so Perfetto shows node depths etc.
                let args: Vec<(String, Json)> = match &ev.json {
                    Json::Object(pairs) => pairs
                        .iter()
                        .filter(|(k, _)| !matches!(k.as_str(), "t_us" | "kind" | "stage" | "tid"))
                        .cloned()
                        .collect(),
                    _ => Vec::new(),
                };
                trace_events.push(Json::object([
                    ("name", Json::from(name)),
                    ("cat", Json::from(kind)),
                    ("ph", Json::from("i")),
                    ("s", Json::from("t")),
                    ("ts", Json::from(ev.t_us)),
                    ("pid", Json::from(1u64)),
                    ("tid", Json::from(ev.tid)),
                    ("args", Json::Object(args)),
                ]));
            }
        }
    }
    Json::object([
        ("traceEvents", Json::Array(trace_events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

/// Noise-floor configuration for [`diff`], mirroring the `bench
/// compare` discipline: a change flags only when it exceeds the
/// relative threshold AND the metric's absolute floor.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative growth (percent) below which changes are noise.
    pub pct_threshold: f64,
    /// Absolute floor for span-time comparisons (µs).
    pub min_us: u64,
    /// Absolute floor for query-count comparisons.
    pub min_queries: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            pct_threshold: 25.0,
            min_us: 50_000,
            min_queries: 64,
        }
    }
}

/// One regression found by [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDelta {
    /// What regressed, e.g. `"span fbdt total_us"`.
    pub what: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
}

impl std::fmt::Display for TraceDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = if self.old > 0.0 {
            (self.new - self.old) * 100.0 / self.old
        } else {
            f64::INFINITY
        };
        write!(
            f,
            "{}: {} -> {} (+{:.1}%)",
            self.what, self.old, self.new, pct
        )
    }
}

/// Compares two trace summaries, returning the regressions in `new`
/// relative to `old` that clear both the relative threshold and the
/// per-metric absolute noise floor.
pub fn diff(old: &TraceSummary, new: &TraceSummary, cfg: &DiffConfig) -> Vec<TraceDelta> {
    let factor = 1.0 + cfg.pct_threshold / 100.0;
    let mut deltas = Vec::new();
    let mut worse = |what: String, old_v: f64, new_v: f64, floor: f64| {
        if new_v > old_v * factor && new_v - old_v > floor {
            deltas.push(TraceDelta {
                what,
                old: old_v,
                new: new_v,
            });
        }
    };

    let old_spans: BTreeMap<&str, &SpanStat> =
        old.spans.iter().map(|s| (s.path.as_str(), s)).collect();
    for s in &new.spans {
        let old_total = old_spans.get(s.path.as_str()).map_or(0, |o| o.total_us);
        worse(
            format!("span {} total_us", s.path),
            old_total as f64,
            s.total_us as f64,
            cfg.min_us as f64,
        );
    }

    let old_attr: BTreeMap<(&str, Option<u64>), u64> = old
        .attribution
        .iter()
        .map(|a| ((a.stage.as_str(), a.output), a.queries))
        .collect();
    for a in &new.attribution {
        let key = (a.stage.as_str(), a.output);
        let old_q = old_attr.get(&key).copied().unwrap_or(0);
        let label = match a.output {
            Some(o) => format!("attr {}[{}] queries", a.stage, o),
            None => format!("attr {} queries", a.stage),
        };
        worse(
            label,
            old_q as f64,
            a.queries as f64,
            cfg.min_queries as f64,
        );
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic well-formed trace: two top-level spans on tid 0,
    /// one nested span, node/metrics/attr events.
    fn sample_trace() -> String {
        [
            r#"{"t_us":0,"kind":"span_open","stage":"support","tid":0,"id":0,"name":"support"}"#,
            r#"{"t_us":100,"kind":"span_close","stage":"support","tid":0,"id":0,"name":"support","elapsed_us":100}"#,
            r#"{"t_us":110,"kind":"span_open","stage":"fbdt","tid":0,"id":1,"name":"fbdt"}"#,
            r#"{"t_us":120,"kind":"node","stage":"fbdt","tid":0,"depth":2,"disposition":"split","elapsed_us":4}"#,
            r#"{"t_us":130,"kind":"span_open","stage":"fbdt/cover","tid":0,"id":2,"name":"cover"}"#,
            r#"{"t_us":190,"kind":"span_close","stage":"fbdt/cover","tid":0,"id":2,"name":"cover","elapsed_us":60}"#,
            r#"{"t_us":310,"kind":"span_close","stage":"fbdt","tid":0,"id":1,"name":"fbdt","elapsed_us":200}"#,
            r#"{"t_us":320,"kind":"metrics","stage":"","tid":0,"queries":500,"queries_per_s":1000,"aig_nodes":32}"#,
            r#"{"t_us":330,"kind":"attr","stage":"support","tid":0,"output":null,"queries":300,"query_ns":600000,"gates":0}"#,
            r#"{"t_us":331,"kind":"attr","stage":"fbdt","tid":0,"output":0,"queries":200,"query_ns":400000,"gates":12}"#,
        ]
        .join("\n")
    }

    #[test]
    fn parses_and_rebuilds_the_span_forest() {
        let events = parse_trace(&sample_trace()).expect("parses");
        assert_eq!(events.len(), 10);
        let forest = span_forest(&events);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].path, "support");
        assert_eq!(forest[1].path, "fbdt");
        assert_eq!(forest[1].elapsed_us(), 200);
        assert_eq!(forest[1].children.len(), 1);
        assert_eq!(forest[1].children[0].path, "fbdt/cover");
        assert_eq!(forest[1].self_us(), 140);
    }

    #[test]
    fn unclosed_spans_close_at_the_last_timestamp() {
        let text = [
            r#"{"t_us":0,"kind":"span_open","stage":"fbdt","tid":0,"id":0,"name":"fbdt"}"#,
            r#"{"t_us":50,"kind":"node","stage":"fbdt","tid":0,"depth":1}"#,
        ]
        .join("\n");
        let events = parse_trace(&text).expect("parses");
        let forest = span_forest(&events);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].end_us, 50, "closed at the stream's end");
    }

    #[test]
    fn summary_has_stats_attribution_and_critical_path() {
        let events = parse_trace(&sample_trace()).expect("parses");
        let summary = summarize(&events);
        assert_eq!(summary.events, 10);
        assert_eq!(summary.duration_us, 331);
        assert_eq!(summary.tids, vec![0]);
        assert_eq!(summary.counts_by_kind["node"], 1);

        // Hottest span by self time is fbdt (140µs self).
        assert_eq!(summary.spans[0].path, "fbdt");
        assert_eq!(summary.spans[0].self_us, 140);

        assert_eq!(summary.attribution.len(), 2);
        assert_eq!(summary.total_attributed_queries(), 500);

        // The critical path descends the longest chain.
        let hops: Vec<&str> = summary
            .critical_path
            .iter()
            .map(|h| h.path.as_str())
            .collect();
        assert_eq!(hops, vec!["fbdt", "fbdt/cover"]);

        let text = summary.render(10);
        assert!(text.contains("hot spans"));
        assert!(text.contains("attribution"));
        assert!(text.contains("critical path: fbdt 0.000s -> fbdt/cover 0.000s"));
    }

    #[test]
    fn repeated_attr_events_keep_the_last_value() {
        let text = [
            r#"{"t_us":0,"kind":"attr","stage":"fbdt","tid":0,"output":0,"queries":10,"query_ns":1,"gates":0}"#,
            r#"{"t_us":9,"kind":"attr","stage":"fbdt","tid":0,"output":0,"queries":25,"query_ns":2,"gates":3}"#,
        ]
        .join("\n");
        let events = parse_trace(&text).expect("parses");
        let rows = attribution_rows(&events);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].queries, 25, "the ledger is cumulative");
        assert_eq!(rows[0].gates, 3);
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let events = parse_trace(&sample_trace()).expect("parses");
        let chrome = to_chrome_trace(&events);
        // Round-trip through text: the export must stay valid JSON.
        let parsed = Json::parse(&chrome.to_compact()).expect("valid JSON");
        let trace_events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(!trace_events.is_empty());
        let mut complete = 0;
        let mut counters = 0;
        let mut metadata = 0;
        for ev in trace_events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
            assert!(ev.get("pid").and_then(Json::as_u64).is_some());
            if ph != "M" {
                assert!(ev.get("ts").and_then(Json::as_u64).is_some(), "ts required");
            }
            match ph {
                "M" => {
                    metadata += 1;
                    assert_eq!(ev.get("name").and_then(Json::as_str), Some("thread_name"));
                    assert!(ev.get("tid").and_then(Json::as_u64).is_some());
                    let thread = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .expect("args.name carries the thread name");
                    assert!(!thread.is_empty());
                }
                "X" => {
                    complete += 1;
                    assert!(ev.get("dur").and_then(Json::as_u64).is_some());
                    assert!(ev.get("tid").and_then(Json::as_u64).is_some());
                    assert!(ev.get("name").and_then(Json::as_str).is_some());
                }
                "C" => {
                    counters += 1;
                    assert!(ev.get("tid").and_then(Json::as_u64).is_some());
                }
                "i" => {
                    assert!(ev.get("tid").and_then(Json::as_u64).is_some());
                }
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(complete, 3, "three spans become X events");
        assert_eq!(counters, 1, "one metrics snapshot becomes a counter");
        assert_eq!(metadata, 1, "one thread_name event per distinct tid");
        assert_eq!(
            trace_events[0].get("ph").and_then(Json::as_str),
            Some("M"),
            "metadata leads the stream"
        );
    }

    #[test]
    fn chrome_export_names_every_thread() {
        let mut text = sample_trace();
        text.push('\n');
        text.push_str(
            r#"{"t_us":400,"kind":"node","stage":"fbdt","tid":3,"depth":1,"disposition":"leaf"}"#,
        );
        let events = parse_trace(&text).expect("parses");
        let chrome = to_chrome_trace(&events);
        let names: Vec<String> = chrome
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents")
            .iter()
            .filter(|ev| ev.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|ev| {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread name")
                    .to_owned()
            })
            .collect();
        assert_eq!(names, vec!["main".to_owned(), "cirlearn-3".to_owned()]);
    }

    #[test]
    fn diff_applies_threshold_and_floor() {
        let old_events = parse_trace(&sample_trace()).expect("parses");
        let old = summarize(&old_events);
        // Identical runs: no regressions.
        assert!(diff(&old, &old, &DiffConfig::default()).is_empty());

        // Inflate fbdt's queries far past floor and threshold.
        let text = sample_trace().replace(
            r#""output":0,"queries":200"#,
            r#""output":0,"queries":2000"#,
        );
        let new = summarize(&parse_trace(&text).expect("parses"));
        let cfg = DiffConfig {
            min_us: 1_000_000, // mute span-time noise in this tiny trace
            ..DiffConfig::default()
        };
        let deltas = diff(&old, &new, &cfg);
        assert_eq!(
            deltas.len(),
            1,
            "only the query regression flags: {deltas:?}"
        );
        assert!(deltas[0].what.contains("fbdt[0]"));

        // Small absolute growth stays under the floor.
        let text =
            sample_trace().replace(r#""output":0,"queries":200"#, r#""output":0,"queries":260"#);
        let new = summarize(&parse_trace(&text).expect("parses"));
        assert!(
            diff(&old, &new, &cfg).is_empty(),
            "under the 64-query floor"
        );
    }

    #[test]
    fn merged_segments_sum_attribution_and_spans() {
        let events = parse_trace(&sample_trace()).expect("parses");
        let seg = summarize(&events);
        let merged = merge_summaries(&[seg.clone(), seg.clone()]);
        assert_eq!(merged.events, 2 * seg.events);
        assert_eq!(merged.duration_us, 2 * seg.duration_us);
        assert_eq!(
            merged.total_attributed_queries(),
            2 * seg.total_attributed_queries(),
            "segments are cumulative only within themselves, so merge sums"
        );
        let fbdt = merged
            .spans
            .iter()
            .find(|s| s.path == "fbdt")
            .expect("fbdt");
        assert_eq!(fbdt.calls, 2);
        assert_eq!(fbdt.total_us, 400);
        assert_eq!(merged.counts_by_kind["attr"], 4);
        // One critical path survives (the longest segment's), unspliced.
        assert_eq!(merged.critical_path, seg.critical_path);
    }

    #[test]
    fn pre_tid_streams_default_to_tid_zero() {
        let text = r#"{"t_us":5,"kind":"event","stage":"","level":"info","message":"old"}"#;
        let events = parse_trace(text).expect("parses");
        assert_eq!(events[0].tid, 0);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let text = "{\"t_us\":1,\"kind\":\"event\",\"stage\":\"\"}\nnot json";
        let err = parse_trace(text).expect_err("bad line");
        assert!(err.contains("line 2"), "{err}");
    }
}
