//! The machine-readable run report.
//!
//! A [`RunReport`] is a snapshot of everything a [`crate::Telemetry`]
//! collected: per-stage wall clock and counter attribution, global
//! counters, optimization pass deltas, budget checkpoints and
//! per-output results. It serializes to JSON (schema below) and parses
//! back, so bench harnesses can consume reports without this crate's
//! in-memory types.
//!
//! JSON schema (version 1):
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "meta":        { "<key>": "<value>", ... },
//!   "elapsed_s":   <f64>,
//!   "counters":    { "<counter>": <u64>, ... },
//!   "histograms":  { "<name>": { "count": <u64>, "sum": <u64>,
//!                                "min": <u64>, "max": <u64>,
//!                                "p50": <u64>, "p90": <u64>,
//!                                "p99": <u64> }, ... },
//!   "stages": [ { "path": "support", "calls": <u64>,
//!                 "elapsed_s": <f64>,
//!                 "counters": { "oracle.queries": <u64>, ... } } ],
//!   "passes": [ { "stage": "optimize", "pass": "rewrite",
//!                 "round": <u64>, "gates_before": <u64>,
//!                 "gates_after": <u64>, "levels_before": <u64>,
//!                 "levels_after": <u64>, "elapsed_s": <f64>,
//!                 "verify_s": <f64> } ],
//!   "checkpoints": [ { "stage": "support", "at_s": <f64>,
//!                      "remaining_s": <f64> | null } ],
//!   "outputs": [ { "output": <u64>, "name": "y0",
//!                  "strategy": "fbdt", "support": <u64>,
//!                  "forced_leaves": <u64>, "queries": <u64>,
//!                  "elapsed_s": <f64>, "gates_before_opt": <u64>,
//!                  "gates_after_opt": <u64> } ],
//!   "faults": { "retries": <u64>, "timeouts": <u64>,
//!               "respawns": <u64>, "degraded_outputs": <u64> },
//!   "exec":   { "pushes": <u64>, "pops": <u64>, "steals": <u64>,
//!               "steal_empty": <u64>, "steal_retry": <u64>,
//!               "depth_max": <u64>, "workers": <u64> },
//!   "attribution": [ { "stage": "fbdt", "output": <u64> | null,
//!                      "queries": <u64>, "query_ns": <u64>,
//!                      "gates": <u64>,
//!                      "by_depth": { "<depth>": <u64>, ... } } ]
//! }
//! ```
//!
//! Stage paths are `/`-joined span names; a nested span's activity is
//! attributed both to itself and to every enclosing span, so the
//! *top-level* stages (paths without `/`) partition the run.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::histogram::HistogramSummary;
use crate::json::Json;

/// Current schema version written by [`RunReport::to_json`].
pub const SCHEMA_VERSION: u64 = 1;

/// Aggregated statistics of one stage (one span path).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageReport {
    /// `/`-joined span path, e.g. `"fbdt"` or `"fbdt/cover"`.
    pub path: String,
    /// Number of spans that completed on this path.
    pub calls: u64,
    /// Total wall clock spent inside the path.
    pub elapsed: Duration,
    /// Counter deltas attributed while the path was active.
    pub counters: BTreeMap<String, u64>,
}

/// One optimization pass application.
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// Stage path active when the pass ran.
    pub stage: String,
    /// Pass name (`balance`, `rewrite`, ...).
    pub pass: String,
    /// 1-based script round.
    pub round: u64,
    /// AND-gate count before the pass.
    pub gates_before: u64,
    /// AND-gate count after the pass.
    pub gates_after: u64,
    /// Logic depth before the pass.
    pub levels_before: u64,
    /// Logic depth after the pass.
    pub levels_after: u64,
    /// Wall clock spent in the pass.
    pub elapsed: Duration,
    /// Wall clock spent verifying the pass result (zero when
    /// verification is off).
    pub verify_elapsed: Duration,
}

/// One budget checkpoint observation.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointReport {
    /// Stage label passed to the checkpoint.
    pub stage: String,
    /// Elapsed budget time at the checkpoint.
    pub at: Duration,
    /// Remaining budget; `None` for unlimited budgets.
    pub remaining: Option<Duration>,
}

/// Per-output learning record.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputReport {
    /// Output position.
    pub output: u64,
    /// Output port name.
    pub name: String,
    /// Winning strategy (display form).
    pub strategy: String,
    /// Estimated support size.
    pub support: u64,
    /// Budget-forced leaves.
    pub forced_leaves: u64,
    /// Oracle queries attributed to this output.
    pub queries: u64,
    /// Wall clock attributed to this output.
    pub elapsed: Duration,
    /// Gate count of this output's cone before optimization.
    pub gates_before_opt: u64,
    /// Gate count of this output's cone after optimization.
    pub gates_after_opt: u64,
}

/// Fault-tolerance summary of one run.
///
/// Mirrors the `faults.*` counters (see `counters` in this crate):
/// the counts also appear in the flat counter map, but the dedicated
/// section keeps dashboards and CI assertions independent of counter
/// naming. Reports written before the fault-tolerance subsystem lack
/// the section; parsing tolerates its absence (all zeros).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultsReport {
    /// Queries retried after a transient oracle fault.
    pub retries: u64,
    /// Queries that hit the watchdog read deadline.
    pub timeouts: u64,
    /// Black-box processes respawned after a fatal fault.
    pub respawns: u64,
    /// Outputs degraded to a baseline circuit.
    pub degraded_outputs: u64,
}

impl FaultsReport {
    /// Whether any fault was observed.
    pub fn any(&self) -> bool {
        self.retries > 0 || self.timeouts > 0 || self.respawns > 0 || self.degraded_outputs > 0
    }

    /// Derives the summary from a counter map.
    pub fn from_counters(counters: &BTreeMap<String, u64>) -> Self {
        let get = |name: &str| counters.get(name).copied().unwrap_or(0);
        FaultsReport {
            retries: get(crate::counters::FAULT_RETRIES),
            timeouts: get(crate::counters::FAULT_TIMEOUTS),
            respawns: get(crate::counters::FAULT_RESPAWNS),
            degraded_outputs: get(crate::counters::FAULT_DEGRADED_OUTPUTS),
        }
    }
}

/// Executor (work-stealing runtime) summary of one run.
///
/// Mirrors the `exec.*` counters the instrumented Chase–Lev deques
/// publish: the counts also appear in the flat counter map, but the
/// dedicated section keeps utilization dashboards independent of
/// counter naming. Runs that never started the executor report all
/// zeros, and reports written before the executor was instrumented
/// lack the section entirely; parsing tolerates its absence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Tasks pushed onto worker deques (owner side).
    pub pushes: u64,
    /// Tasks popped from the owner end.
    pub pops: u64,
    /// Tasks successfully stolen from other workers.
    pub steals: u64,
    /// Steal attempts that found the victim empty.
    pub steal_empty: u64,
    /// Steal attempts that lost a race and retried.
    pub steal_retry: u64,
    /// High-water mark of any single deque's queue depth.
    pub depth_max: u64,
    /// Worker observers that published statistics.
    pub workers: u64,
}

impl ExecReport {
    /// Whether the executor ran at all.
    pub fn any(&self) -> bool {
        self.pushes > 0
            || self.pops > 0
            || self.steals > 0
            || self.steal_empty > 0
            || self.steal_retry > 0
            || self.depth_max > 0
            || self.workers > 0
    }

    /// Fraction of owner-side pops that were lost to thieves instead:
    /// `steals / (pops + steals)`, the load-balance indicator.
    pub fn steal_ratio(&self) -> f64 {
        let taken = self.pops + self.steals;
        if taken == 0 {
            0.0
        } else {
            self.steals as f64 / taken as f64
        }
    }

    /// Derives the summary from a counter map.
    pub fn from_counters(counters: &BTreeMap<String, u64>) -> Self {
        let get = |name: &str| counters.get(name).copied().unwrap_or(0);
        ExecReport {
            pushes: get(crate::counters::EXEC_PUSHES),
            pops: get(crate::counters::EXEC_POPS),
            steals: get(crate::counters::EXEC_STEALS),
            steal_empty: get(crate::counters::EXEC_STEAL_EMPTY),
            steal_retry: get(crate::counters::EXEC_STEAL_RETRY),
            depth_max: get(crate::counters::EXEC_DEPTH_MAX),
            workers: get(crate::counters::EXEC_WORKERS),
        }
    }
}

/// One cost-ledger cell: the resources attributed to a `(top-level
/// stage, output)` pair.
///
/// Top-level stages partition the run, so summing `queries` over all
/// records yields the run's total oracle query count — the invariant
/// the e2e suite pins against `LearnResult::queries`. `output` is
/// `None` for work not tied to a single output (the shared template
/// matching stage).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionRecord {
    /// Top-level stage name (`templates`, `support`, `fbdt`, ...).
    pub stage: String,
    /// Output index the work was for, if any.
    pub output: Option<u64>,
    /// Oracle queries issued under this key.
    pub queries: u64,
    /// Total oracle wall clock (ns) under this key.
    pub query_ns: u64,
    /// AND gates built under this key.
    pub gates: u64,
    /// Queries issued per FBDT depth (empty outside the FBDT).
    pub by_depth: BTreeMap<u64, u64>,
}

/// A full run snapshot; see the `report` module docs for the schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Free-form key/value annotations (case name, seed, ...).
    pub meta: BTreeMap<String, String>,
    /// Wall clock from telemetry creation to snapshot.
    pub elapsed: Duration,
    /// Global monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Latency histogram summaries, keyed by histogram name (see
    /// `histograms` in this crate); empty histograms are omitted.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-stage aggregation, sorted by path.
    pub stages: Vec<StageReport>,
    /// Optimization pass deltas, in execution order.
    pub passes: Vec<PassReport>,
    /// Budget checkpoints, in execution order.
    pub checkpoints: Vec<CheckpointReport>,
    /// Per-output records, in output order.
    pub outputs: Vec<OutputReport>,
    /// Fault-tolerance summary (all zeros for fault-free runs).
    pub faults: FaultsReport,
    /// Executor summary (all zeros for single-threaded runs).
    pub exec: ExecReport,
    /// The per-(stage, output) cost ledger, sorted by stage then
    /// output (empty for runs without oracle activity).
    pub attribution: Vec<AttributionRecord>,
}

impl RunReport {
    /// The stage with the given path, if present.
    pub fn stage(&self, path: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.path == path)
    }

    /// Top-level stages (paths without `/`): these partition the run.
    pub fn top_level_stages(&self) -> impl Iterator<Item = &StageReport> {
        self.stages.iter().filter(|s| !s.path.contains('/'))
    }

    /// Sums a counter over the top-level stages.
    pub fn top_level_counter_sum(&self, counter: &str) -> u64 {
        self.top_level_stages()
            .filter_map(|s| s.counters.get(counter))
            .sum()
    }

    /// A global counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total oracle queries across the attribution ledger. Equal to
    /// the `oracle.queries` counter (and `LearnResult::queries`) by
    /// construction, because top-level stages partition the run.
    pub fn attribution_total_queries(&self) -> u64 {
        self.attribution.iter().map(|a| a.queries).sum()
    }

    /// Sums ledger queries for one top-level stage (over all outputs).
    pub fn attribution_stage_queries(&self, stage: &str) -> u64 {
        self.attribution
            .iter()
            .filter(|a| a.stage == stage)
            .map(|a| a.queries)
            .sum()
    }

    /// Serializes to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        let counter_obj = |counters: &BTreeMap<String, u64>| {
            Json::Object(
                counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            )
        };
        Json::object([
            ("schema_version", Json::from(SCHEMA_VERSION)),
            (
                "meta",
                Json::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.clone())))
                        .collect(),
                ),
            ),
            ("elapsed_s", Json::from(self.elapsed.as_secs_f64())),
            ("counters", counter_obj(&self.counters)),
            (
                "histograms",
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "stages",
                Json::Array(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::object([
                                ("path", Json::from(s.path.clone())),
                                ("calls", Json::from(s.calls)),
                                ("elapsed_s", Json::from(s.elapsed.as_secs_f64())),
                                ("counters", counter_obj(&s.counters)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "passes",
                Json::Array(
                    self.passes
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("stage", Json::from(p.stage.clone())),
                                ("pass", Json::from(p.pass.clone())),
                                ("round", Json::from(p.round)),
                                ("gates_before", Json::from(p.gates_before)),
                                ("gates_after", Json::from(p.gates_after)),
                                ("levels_before", Json::from(p.levels_before)),
                                ("levels_after", Json::from(p.levels_after)),
                                ("elapsed_s", Json::from(p.elapsed.as_secs_f64())),
                                ("verify_s", Json::from(p.verify_elapsed.as_secs_f64())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "checkpoints",
                Json::Array(
                    self.checkpoints
                        .iter()
                        .map(|c| {
                            Json::object([
                                ("stage", Json::from(c.stage.clone())),
                                ("at_s", Json::from(c.at.as_secs_f64())),
                                (
                                    "remaining_s",
                                    match c.remaining {
                                        Some(r) => Json::from(r.as_secs_f64()),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "outputs",
                Json::Array(
                    self.outputs
                        .iter()
                        .map(|o| {
                            Json::object([
                                ("output", Json::from(o.output)),
                                ("name", Json::from(o.name.clone())),
                                ("strategy", Json::from(o.strategy.clone())),
                                ("support", Json::from(o.support)),
                                ("forced_leaves", Json::from(o.forced_leaves)),
                                ("queries", Json::from(o.queries)),
                                ("elapsed_s", Json::from(o.elapsed.as_secs_f64())),
                                ("gates_before_opt", Json::from(o.gates_before_opt)),
                                ("gates_after_opt", Json::from(o.gates_after_opt)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "faults",
                Json::object([
                    ("retries", Json::from(self.faults.retries)),
                    ("timeouts", Json::from(self.faults.timeouts)),
                    ("respawns", Json::from(self.faults.respawns)),
                    ("degraded_outputs", Json::from(self.faults.degraded_outputs)),
                ]),
            ),
            (
                "exec",
                Json::object([
                    ("pushes", Json::from(self.exec.pushes)),
                    ("pops", Json::from(self.exec.pops)),
                    ("steals", Json::from(self.exec.steals)),
                    ("steal_empty", Json::from(self.exec.steal_empty)),
                    ("steal_retry", Json::from(self.exec.steal_retry)),
                    ("depth_max", Json::from(self.exec.depth_max)),
                    ("workers", Json::from(self.exec.workers)),
                ]),
            ),
            (
                "attribution",
                Json::Array(
                    self.attribution
                        .iter()
                        .map(|a| {
                            Json::object([
                                ("stage", Json::from(a.stage.clone())),
                                ("output", a.output.map(Json::from).unwrap_or(Json::Null)),
                                ("queries", Json::from(a.queries)),
                                ("query_ns", Json::from(a.query_ns)),
                                ("gates", Json::from(a.gates)),
                                (
                                    "by_depth",
                                    Json::Object(
                                        a.by_depth
                                            .iter()
                                            .map(|(d, q)| (d.to_string(), Json::from(*q)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstructs a report from its JSON form.
    pub fn from_json(json: &Json) -> Result<RunReport, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let counters_of = |j: &Json| -> Result<BTreeMap<String, u64>, String> {
            j.as_object()
                .ok_or("counters must be an object")?
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("counter {k} is not a u64"))
                })
                .collect()
        };
        let duration_of = |j: &Json, what: &str| -> Result<Duration, String> {
            j.as_f64()
                .filter(|s| *s >= 0.0)
                .map(Duration::from_secs_f64)
                .ok_or_else(|| format!("{what} is not a non-negative number"))
        };
        let str_of = |j: Option<&Json>, what: &str| -> Result<String, String> {
            j.and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {what}"))
        };
        let u64_of = |j: Option<&Json>, what: &str| -> Result<u64, String> {
            j.and_then(Json::as_u64)
                .ok_or_else(|| format!("missing u64 field {what}"))
        };

        let meta = json
            .get("meta")
            .and_then(Json::as_object)
            .ok_or("missing meta")?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|v| (k.clone(), v.to_owned()))
                    .ok_or_else(|| format!("meta {k} is not a string"))
            })
            .collect::<Result<_, _>>()?;
        let elapsed = duration_of(
            json.get("elapsed_s").ok_or("missing elapsed_s")?,
            "elapsed_s",
        )?;
        let counters = counters_of(json.get("counters").ok_or("missing counters")?)?;

        // Absent in reports written before the performance
        // observability layer; treat as empty rather than rejecting.
        let histograms = match json.get("histograms") {
            None | Some(Json::Null) => BTreeMap::new(),
            Some(h) => h
                .as_object()
                .ok_or("histograms must be an object")?
                .iter()
                .map(|(k, v)| {
                    HistogramSummary::from_json(v)
                        .map(|s| (k.clone(), s))
                        .map_err(|e| format!("histogram {k}: {e}"))
                })
                .collect::<Result<_, _>>()?,
        };

        let stages = json
            .get("stages")
            .and_then(Json::as_array)
            .ok_or("missing stages")?
            .iter()
            .map(|s| {
                Ok(StageReport {
                    path: str_of(s.get("path"), "stage.path")?,
                    calls: u64_of(s.get("calls"), "stage.calls")?,
                    elapsed: duration_of(
                        s.get("elapsed_s").ok_or("missing stage.elapsed_s")?,
                        "stage.elapsed_s",
                    )?,
                    counters: counters_of(s.get("counters").ok_or("missing stage.counters")?)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        let passes = json
            .get("passes")
            .and_then(Json::as_array)
            .ok_or("missing passes")?
            .iter()
            .map(|p| {
                Ok(PassReport {
                    stage: str_of(p.get("stage"), "pass.stage")?,
                    pass: str_of(p.get("pass"), "pass.pass")?,
                    round: u64_of(p.get("round"), "pass.round")?,
                    gates_before: u64_of(p.get("gates_before"), "pass.gates_before")?,
                    gates_after: u64_of(p.get("gates_after"), "pass.gates_after")?,
                    levels_before: u64_of(p.get("levels_before"), "pass.levels_before")?,
                    levels_after: u64_of(p.get("levels_after"), "pass.levels_after")?,
                    elapsed: duration_of(
                        p.get("elapsed_s").ok_or("missing pass.elapsed_s")?,
                        "pass.elapsed_s",
                    )?,
                    // Absent in reports written before verification
                    // existed; treat as zero rather than rejecting.
                    verify_elapsed: match p.get("verify_s") {
                        None | Some(Json::Null) => Duration::ZERO,
                        Some(j) => duration_of(j, "pass.verify_s")?,
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        let checkpoints = json
            .get("checkpoints")
            .and_then(Json::as_array)
            .ok_or("missing checkpoints")?
            .iter()
            .map(|c| {
                let remaining = match c.get("remaining_s") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(duration_of(j, "checkpoint.remaining_s")?),
                };
                Ok(CheckpointReport {
                    stage: str_of(c.get("stage"), "checkpoint.stage")?,
                    at: duration_of(c.get("at_s").ok_or("missing checkpoint.at_s")?, "at_s")?,
                    remaining,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        let outputs = json
            .get("outputs")
            .and_then(Json::as_array)
            .ok_or("missing outputs")?
            .iter()
            .map(|o| {
                Ok(OutputReport {
                    output: u64_of(o.get("output"), "output.output")?,
                    name: str_of(o.get("name"), "output.name")?,
                    strategy: str_of(o.get("strategy"), "output.strategy")?,
                    support: u64_of(o.get("support"), "output.support")?,
                    forced_leaves: u64_of(o.get("forced_leaves"), "output.forced_leaves")?,
                    queries: u64_of(o.get("queries"), "output.queries")?,
                    elapsed: duration_of(
                        o.get("elapsed_s").ok_or("missing output.elapsed_s")?,
                        "output.elapsed_s",
                    )?,
                    gates_before_opt: u64_of(o.get("gates_before_opt"), "gates_before_opt")?,
                    gates_after_opt: u64_of(o.get("gates_after_opt"), "gates_after_opt")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        // Absent in reports written before the fault-tolerance
        // subsystem existed; treat as all-zero rather than rejecting.
        let faults = match json.get("faults") {
            None | Some(Json::Null) => FaultsReport::default(),
            Some(f) => FaultsReport {
                retries: u64_of(f.get("retries"), "faults.retries")?,
                timeouts: u64_of(f.get("timeouts"), "faults.timeouts")?,
                respawns: u64_of(f.get("respawns"), "faults.respawns")?,
                degraded_outputs: u64_of(f.get("degraded_outputs"), "faults.degraded_outputs")?,
            },
        };

        // Absent in reports written before the executor was
        // instrumented; treat as all-zero rather than rejecting.
        let exec = match json.get("exec") {
            None | Some(Json::Null) => ExecReport::default(),
            Some(e) => ExecReport {
                pushes: u64_of(e.get("pushes"), "exec.pushes")?,
                pops: u64_of(e.get("pops"), "exec.pops")?,
                steals: u64_of(e.get("steals"), "exec.steals")?,
                steal_empty: u64_of(e.get("steal_empty"), "exec.steal_empty")?,
                steal_retry: u64_of(e.get("steal_retry"), "exec.steal_retry")?,
                depth_max: u64_of(e.get("depth_max"), "exec.depth_max")?,
                workers: u64_of(e.get("workers"), "exec.workers")?,
            },
        };

        // Absent in reports written before the cost-attribution layer
        // existed; treat as empty rather than rejecting.
        let attribution = match json.get("attribution") {
            None | Some(Json::Null) => Vec::new(),
            Some(a) => a
                .as_array()
                .ok_or("attribution must be an array")?
                .iter()
                .map(|r| {
                    let output = match r.get("output") {
                        None | Some(Json::Null) => None,
                        Some(j) => Some(j.as_u64().ok_or("attribution.output is not a u64")?),
                    };
                    let by_depth = match r.get("by_depth") {
                        None | Some(Json::Null) => BTreeMap::new(),
                        Some(d) => d
                            .as_object()
                            .ok_or("attribution.by_depth must be an object")?
                            .iter()
                            .map(|(k, v)| {
                                let depth =
                                    k.parse::<u64>().map_err(|_| format!("bad depth key {k}"))?;
                                let q = v.as_u64().ok_or_else(|| {
                                    format!("attribution.by_depth[{k}] is not a u64")
                                })?;
                                Ok::<_, String>((depth, q))
                            })
                            .collect::<Result<_, _>>()?,
                    };
                    Ok(AttributionRecord {
                        stage: str_of(r.get("stage"), "attribution.stage")?,
                        output,
                        queries: u64_of(r.get("queries"), "attribution.queries")?,
                        query_ns: u64_of(r.get("query_ns"), "attribution.query_ns")?,
                        gates: u64_of(r.get("gates"), "attribution.gates")?,
                        by_depth,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };

        Ok(RunReport {
            meta,
            elapsed,
            counters,
            histograms,
            stages,
            passes,
            checkpoints,
            outputs,
            faults,
            exec,
            attribution,
        })
    }

    /// A compact human-readable per-stage breakdown (one line per
    /// top-level stage), for CLI summaries and bench output.
    pub fn stage_breakdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total_q = self.counter(crate::counters::ORACLE_QUERIES).max(1);
        for s in self.top_level_stages() {
            let q = s
                .counters
                .get(crate::counters::ORACLE_QUERIES)
                .copied()
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<12} {:>8.3}s  {:>12} queries ({:>5.1}%)  x{}",
                s.path,
                s.elapsed.as_secs_f64(),
                q,
                q as f64 * 100.0 / total_q as f64,
                s.calls
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            meta: BTreeMap::from([
                ("case".to_owned(), "case_01".to_owned()),
                ("seed".to_owned(), "117".to_owned()),
            ]),
            elapsed: Duration::from_millis(1500),
            counters: BTreeMap::from([
                ("oracle.queries".to_owned(), 1200),
                ("fbdt.splits".to_owned(), 37),
            ]),
            histograms: BTreeMap::from([(
                crate::histograms::ORACLE_QUERY_NS.to_owned(),
                HistogramSummary {
                    count: 1200,
                    sum: 2_400_000,
                    min: 900,
                    max: 40_000,
                    p50: 1_792,
                    p90: 3_584,
                    p99: 28_672,
                },
            )]),
            stages: vec![
                StageReport {
                    path: "support".to_owned(),
                    calls: 3,
                    elapsed: Duration::from_millis(400),
                    counters: BTreeMap::from([("oracle.queries".to_owned(), 900)]),
                },
                StageReport {
                    path: "fbdt".to_owned(),
                    calls: 2,
                    elapsed: Duration::from_millis(700),
                    counters: BTreeMap::from([("oracle.queries".to_owned(), 300)]),
                },
                StageReport {
                    path: "fbdt/cover".to_owned(),
                    calls: 2,
                    elapsed: Duration::from_millis(100),
                    counters: BTreeMap::new(),
                },
            ],
            passes: vec![PassReport {
                stage: "optimize".to_owned(),
                pass: "rewrite".to_owned(),
                round: 1,
                gates_before: 120,
                gates_after: 95,
                levels_before: 14,
                levels_after: 12,
                elapsed: Duration::from_millis(20),
                verify_elapsed: Duration::from_millis(4),
            }],
            checkpoints: vec![
                CheckpointReport {
                    stage: "support".to_owned(),
                    at: Duration::from_millis(400),
                    remaining: Some(Duration::from_millis(2300)),
                },
                CheckpointReport {
                    stage: "fbdt".to_owned(),
                    at: Duration::from_millis(1100),
                    remaining: None,
                },
            ],
            outputs: vec![OutputReport {
                output: 0,
                name: "y0".to_owned(),
                strategy: "fbdt".to_owned(),
                support: 12,
                forced_leaves: 1,
                queries: 640,
                elapsed: Duration::from_millis(900),
                gates_before_opt: 80,
                gates_after_opt: 44,
            }],
            faults: FaultsReport {
                retries: 3,
                timeouts: 1,
                respawns: 2,
                degraded_outputs: 1,
            },
            exec: ExecReport {
                pushes: 5_000,
                pops: 4_200,
                steals: 800,
                steal_empty: 90,
                steal_retry: 12,
                depth_max: 64,
                workers: 4,
            },
            attribution: vec![
                AttributionRecord {
                    stage: "support".to_owned(),
                    output: Some(0),
                    queries: 900,
                    query_ns: 1_800_000,
                    gates: 0,
                    by_depth: BTreeMap::new(),
                },
                AttributionRecord {
                    stage: "fbdt".to_owned(),
                    output: Some(0),
                    queries: 300,
                    query_ns: 600_000,
                    gates: 80,
                    by_depth: BTreeMap::from([(0, 180), (1, 120)]),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let report = sample_report();
        let text = report.to_json().to_pretty();
        let parsed = crate::json::Json::parse(&text).expect("valid JSON");
        let back = RunReport::from_json(&parsed).expect("valid schema");
        assert_eq!(back, report);
    }

    #[test]
    fn top_level_sum_ignores_nested_stages() {
        let report = sample_report();
        assert_eq!(report.top_level_counter_sum("oracle.queries"), 1200);
        assert_eq!(report.top_level_stages().count(), 2);
    }

    #[test]
    fn from_json_tolerates_missing_verify_time() {
        // Reports from before the verification subsystem lack
        // "verify_s"; they must still parse, defaulting to zero.
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            for (key, value) in pairs.iter_mut() {
                if key != "passes" {
                    continue;
                }
                if let Json::Array(passes) = value {
                    for p in passes {
                        if let Json::Object(fields) = p {
                            fields.retain(|(k, _)| k != "verify_s");
                        }
                    }
                }
            }
        }
        let back = RunReport::from_json(&json).expect("tolerant schema");
        assert_eq!(back.passes[0].verify_elapsed, Duration::ZERO);
    }

    #[test]
    fn from_json_tolerates_missing_histograms_section() {
        // Reports from before the performance observability layer lack
        // "histograms"; they must still parse, defaulting to empty.
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "histograms");
        }
        let back = RunReport::from_json(&json).expect("tolerant schema");
        assert!(back.histograms.is_empty());
    }

    #[test]
    fn from_json_tolerates_missing_faults_section() {
        // Reports from before the fault-tolerance subsystem lack
        // "faults"; they must still parse, defaulting to all zeros.
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "faults");
        }
        let back = RunReport::from_json(&json).expect("tolerant schema");
        assert_eq!(back.faults, FaultsReport::default());
        assert!(!back.faults.any());
    }

    #[test]
    fn from_json_tolerates_missing_attribution_section() {
        // Reports from before the cost-attribution layer lack
        // "attribution"; they must still parse, defaulting to empty.
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "attribution");
        }
        let back = RunReport::from_json(&json).expect("tolerant schema");
        assert!(back.attribution.is_empty());
        assert_eq!(back.attribution_total_queries(), 0);
    }

    #[test]
    fn from_json_tolerates_missing_exec_section() {
        // Reports from before the executor was instrumented lack
        // "exec"; they must still parse, defaulting to all zeros.
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "exec");
        }
        let back = RunReport::from_json(&json).expect("tolerant schema");
        assert_eq!(back.exec, ExecReport::default());
        assert!(!back.exec.any());
        assert_eq!(back.exec.steal_ratio(), 0.0);
    }

    #[test]
    fn exec_derives_from_counters_and_computes_steal_ratio() {
        let counters = BTreeMap::from([
            (crate::counters::EXEC_PUSHES.to_owned(), 100),
            (crate::counters::EXEC_POPS.to_owned(), 75),
            (crate::counters::EXEC_STEALS.to_owned(), 25),
            (crate::counters::EXEC_DEPTH_MAX.to_owned(), 10),
            (crate::counters::EXEC_WORKERS.to_owned(), 2),
        ]);
        let exec = ExecReport::from_counters(&counters);
        assert!(exec.any());
        assert_eq!(exec.pushes, 100);
        assert_eq!(exec.steals, 25);
        assert_eq!(exec.steal_empty, 0);
        assert!((exec.steal_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn attribution_sums_by_stage_and_in_total() {
        let report = sample_report();
        assert_eq!(report.attribution_total_queries(), 1200);
        assert_eq!(report.attribution_stage_queries("support"), 900);
        assert_eq!(report.attribution_stage_queries("fbdt"), 300);
        assert_eq!(report.attribution_stage_queries("nope"), 0);
    }

    #[test]
    fn faults_derive_from_counters() {
        let counters = BTreeMap::from([
            (crate::counters::FAULT_RETRIES.to_owned(), 5),
            (crate::counters::FAULT_RESPAWNS.to_owned(), 2),
        ]);
        let faults = FaultsReport::from_counters(&counters);
        assert_eq!(faults.retries, 5);
        assert_eq!(faults.respawns, 2);
        assert_eq!(faults.timeouts, 0);
        assert!(faults.any());
    }

    #[test]
    fn from_json_rejects_wrong_version() {
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            pairs[0].1 = Json::from(99u64);
        }
        assert!(RunReport::from_json(&json).is_err());
    }

    #[test]
    fn breakdown_lists_top_level_stages() {
        let text = sample_report().stage_breakdown();
        assert!(text.contains("support"));
        assert!(text.contains("fbdt"));
        assert!(!text.contains("fbdt/cover"));
    }
}
