//! A structured JSONL trace-event stream.
//!
//! A [`TraceWriter`] emits one JSON object per line so a run can be
//! replayed, diffed or converted to a flamegraph offline. Every line
//! carries:
//!
//! - `t_us` — microseconds since the trace started, taken from a
//!   monotonic clock (never wall time, so lines are totally ordered
//!   even across clock adjustments),
//! - `kind` — the event kind (see below),
//! - `stage` — the `/`-joined span path active when the event fired
//!   (`""` at top level).
//!
//! Kinds emitted by the pipeline:
//!
//! | kind         | extra fields                                             |
//! |--------------|----------------------------------------------------------|
//! | `span_open`  | `id`, `name`                                             |
//! | `span_close` | `id`, `name`, `elapsed_us`                               |
//! | `node`       | `output`, `depth`, `queries`, `elapsed_us`, `kind2`      |
//! | `pass`       | `pass`, `round`, `gates_before`, `gates_after`, ...      |
//! | `checkpoint` | `label`, `at_us`, `remaining_us`                         |
//! | `event`      | `level`, `message`                                       |
//!
//! `span_open`/`span_close` lines are balanced: the telemetry layer
//! emits a close for every open, including spans force-closed by an
//! out-of-order guard drop, so offline consumers can rebuild the stage
//! tree with a simple stack.
//!
//! Unlike [`Reporter`](crate::Reporter) events, the trace stream is
//! not level-filtered: it records everything, because it exists for
//! offline analysis rather than live reading.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

struct TraceInner {
    out: Box<dyn Write + Send>,
    start: Instant,
    lines: u64,
    /// First write error, if any; reported once instead of spamming.
    failed: bool,
}

/// A shared, clonable handle writing trace events as JSON lines.
///
/// High-rate events (FBDT `node` lines, `pass` lines) stay in the
/// sink's buffer; structural events — span open/close, faults,
/// checkpoints — flush it, as does [`TraceWriter::flush`]. File
/// streams wrap a `BufWriter`, so the hot path costs a formatted line
/// and a memcpy instead of a syscall per event, while a crashed run
/// (panic, which unwinds into the flushing drop guards) still keeps
/// everything emitted before the crash and loses at most the node
/// lines since the last structural event on an outright abort.
///
/// # Examples
///
/// ```
/// use cirlearn_telemetry::{Level, Telemetry, TraceWriter};
///
/// let (trace, sink) = TraceWriter::to_shared_buffer();
/// let telemetry = Telemetry::recording();
/// telemetry.set_trace(trace);
/// {
///     let _span = telemetry.span("support");
///     telemetry.event(Level::Info, "probing");
/// }
/// let text = sink.take_string();
/// let kinds: Vec<&str> = text
///     .lines()
///     .map(|l| if l.contains("span_open") { "open" } else { "other" })
///     .collect();
/// assert_eq!(kinds.len(), 3); // open, event, close
/// ```
#[derive(Clone)]
pub struct TraceWriter {
    inner: Arc<Mutex<TraceInner>>,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceWriter")
    }
}

impl TraceWriter {
    /// A trace stream over any writer. The monotonic clock starts now.
    pub fn to_writer(out: Box<dyn Write + Send>) -> TraceWriter {
        TraceWriter {
            inner: Arc::new(Mutex::new(TraceInner {
                out,
                start: Instant::now(),
                lines: 0,
                failed: false,
            })),
        }
    }

    /// A trace stream writing to (truncating) the file at `path`,
    /// buffered between structural events.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<TraceWriter> {
        let file = std::fs::File::create(path)?;
        Ok(TraceWriter::to_writer(Box::new(std::io::BufWriter::new(
            file,
        ))))
    }

    /// A trace stream into an in-memory buffer, plus a handle to read
    /// it back — for tests.
    pub fn to_shared_buffer() -> (TraceWriter, SharedBuffer) {
        let buffer = SharedBuffer::default();
        (TraceWriter::to_writer(Box::new(buffer.clone())), buffer)
    }

    /// Emits one event line. `fields` are appended after the standard
    /// `t_us` / `kind` / `stage` triple.
    pub fn emit(&self, kind: &str, stage: &str, fields: &[(&'static str, Json)]) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let t_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut pairs = Vec::with_capacity(3 + fields.len());
        pairs.push(("t_us".to_owned(), Json::from(t_us)));
        pairs.push(("kind".to_owned(), Json::from(kind)));
        pairs.push(("stage".to_owned(), Json::from(stage)));
        for (k, v) in fields {
            pairs.push(((*k).to_owned(), v.clone()));
        }
        let mut line = Json::Object(pairs).to_compact();
        line.push('\n');
        if inner.out.write_all(line.as_bytes()).is_err() {
            if !inner.failed {
                eprintln!("cirlearn: trace stream write failed; further events dropped");
            }
            inner.failed = true;
            return;
        }
        inner.lines += 1;
        // Structural events are rare and mark progress worth keeping
        // on disk; per-node / per-pass events ride the buffer.
        if !matches!(kind, "node" | "pass") {
            let _ = inner.out.flush();
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).lines
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let _ = inner.out.flush();
    }
}

/// An in-memory `Write` sink shared between a [`TraceWriter`] and a
/// test that wants to inspect what was written.
#[derive(Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// Takes the accumulated bytes as UTF-8 text (lossy), leaving the
    /// buffer empty.
    pub fn take_string(&self) -> String {
        let mut bytes = self.bytes.lock().unwrap_or_else(|p| p.into_inner());
        String::from_utf8_lossy(&std::mem::take(&mut *bytes)).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_line_is_valid_compact_json_with_the_standard_triple() {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        trace.emit("event", "learn/fbdt", &[("message", Json::from("hi"))]);
        trace.emit("checkpoint", "", &[("remaining_us", Json::Null)]);
        assert_eq!(trace.lines(), 2);
        let text = sink.take_string();
        let mut prev_t = 0;
        for line in text.lines() {
            let parsed = Json::parse(line).expect("each line parses alone");
            let t = parsed.get("t_us").and_then(Json::as_u64).expect("t_us");
            assert!(t >= prev_t, "timestamps are monotone");
            prev_t = t;
            assert!(parsed.get("kind").and_then(Json::as_str).is_some());
            assert!(parsed.get("stage").and_then(Json::as_str).is_some());
        }
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn clones_share_the_stream() {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let t2 = trace.clone();
        trace.emit("a", "", &[]);
        t2.emit("b", "", &[]);
        assert_eq!(trace.lines(), 2);
        assert_eq!(sink.take_string().lines().count(), 2);
    }

    struct FailingSink;
    impl Write for FailingSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failures_drop_events_instead_of_panicking() {
        let trace = TraceWriter::to_writer(Box::new(FailingSink));
        trace.emit("event", "", &[]);
        trace.emit("event", "", &[]);
        assert_eq!(trace.lines(), 0);
    }
}
