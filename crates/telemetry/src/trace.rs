//! A structured JSONL trace-event stream.
//!
//! A [`TraceWriter`] emits one JSON object per line so a run can be
//! replayed, diffed or converted to a flamegraph offline. Every line
//! carries:
//!
//! - `t_us` — microseconds since the trace started, taken from a
//!   monotonic clock (never wall time, so lines are ordered per
//!   thread even across clock adjustments),
//! - `kind` — the event kind (see below),
//! - `stage` — the `/`-joined span path active when the event fired
//!   (`""` at top level),
//! - `tid` — a small stable per-thread id (0 for the first thread that
//!   ever traced, 1 for the next, ...), so multi-threaded streams can
//!   be demultiplexed; within one `tid` timestamps are monotone.
//!
//! Kinds emitted by the pipeline:
//!
//! | kind         | extra fields                                             |
//! |--------------|----------------------------------------------------------|
//! | `span_open`  | `id`, `name`                                             |
//! | `span_close` | `id`, `name`, `elapsed_us`                               |
//! | `node`       | `output`, `depth`, `queries`, `elapsed_us`, `kind2`      |
//! | `pass`       | `pass`, `round`, `gates_before`, `gates_after`, ...      |
//! | `checkpoint` | `label`, `at_us`, `remaining_us`                         |
//! | `event`      | `level`, `message`                                       |
//! | `metrics`    | `queries`, `queries_per_s`, `aig_nodes`, `peak_rss_kb`   |
//! | `attr`       | `output`, `queries`, `query_ns`, `gates`                 |
//!
//! `span_open`/`span_close` lines are balanced: the telemetry layer
//! emits a close for every open, including spans force-closed by an
//! out-of-order guard drop, so offline consumers can rebuild the stage
//! tree with a simple per-`tid` stack.
//!
//! Unlike [`Reporter`](crate::Reporter) events, the trace stream is
//! not level-filtered: it records everything, because it exists for
//! offline analysis rather than live reading.
//!
//! # Per-thread buffers
//!
//! Hot paths (the FBDT node loop) can take a [`TraceLocal`] via
//! [`TraceWriter::local`]: an emitter that formats lines into a
//! thread-private buffer, touching the shared sink only when the
//! buffer fills or the local is dropped. Every local registers itself
//! with the writer, so [`TraceWriter::flush`] — which the CLI drop
//! guard runs on panic — drains outstanding buffers before any
//! subsequent structural event, keeping the stream well-formed JSONL
//! with no lost `node`/`metrics` lines ahead of the `aborted` marker.

use std::io::Write;
use std::time::Instant;

use crate::json::Json;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex, Weak};

/// Global allocator of small per-thread trace ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // relaxed-ok: allocates a unique id; nothing is published through it.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's stable trace id: a small integer assigned on
/// first use, dense across the threads that ever emitted an event.
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

struct TraceInner {
    out: Box<dyn Write + Send>,
    lines: u64,
    /// First write error, if any; reported once instead of spamming.
    failed: bool,
}

impl TraceInner {
    /// Writes pre-formatted JSONL text (one or more `\n`-terminated
    /// lines) to the sink, updating the line count and the sticky
    /// failure flag.
    fn write_text(&mut self, text: &str) -> bool {
        if text.is_empty() {
            return true;
        }
        if self.out.write_all(text.as_bytes()).is_err() {
            if !self.failed {
                // blocking-ok: one-shot failure notice on a sticky
                // error path, never repeated.
                eprintln!("cirlearn: trace stream write failed; further events dropped");
            }
            self.failed = true;
            return false;
        }
        self.lines += text.bytes().filter(|&b| b == b'\n').count() as u64;
        true
    }
}

struct TraceShared {
    start: Instant,
    inner: Mutex<TraceInner>,
    /// Per-thread buffers handed out by [`TraceWriter::local`]; kept
    /// weakly so a dropped local unregisters itself for free, and
    /// drained by [`TraceWriter::flush`].
    locals: Mutex<Vec<Weak<Mutex<String>>>>,
}

/// Formats one event line (without writing it anywhere).
pub(crate) fn format_line(
    t_us: u64,
    tid: u64,
    kind: &str,
    stage: &str,
    fields: &[(&'static str, Json)],
) -> String {
    let mut pairs = Vec::with_capacity(4 + fields.len());
    pairs.push(("t_us".to_owned(), Json::from(t_us)));
    pairs.push(("kind".to_owned(), Json::from(kind)));
    pairs.push(("stage".to_owned(), Json::from(stage)));
    pairs.push(("tid".to_owned(), Json::from(tid)));
    for (k, v) in fields {
        pairs.push(((*k).to_owned(), v.clone()));
    }
    let mut line = Json::Object(pairs).to_compact();
    line.push('\n');
    line
}

/// A shared, clonable handle writing trace events as JSON lines.
///
/// High-rate events (FBDT `node` lines, `pass` lines, `metrics`
/// snapshots) stay in the sink's buffer; structural events — span
/// open/close, faults, checkpoints — flush it, as does
/// [`TraceWriter::flush`]. File streams wrap a `BufWriter`, so the hot
/// path costs a formatted line and a memcpy instead of a syscall per
/// event, while a crashed run (panic, which unwinds into the flushing
/// drop guards) still keeps everything emitted before the crash and
/// loses at most the node lines since the last structural event on an
/// outright abort.
///
/// # Examples
///
/// ```
/// use cirlearn_telemetry::{Level, Telemetry, TraceWriter};
///
/// let (trace, sink) = TraceWriter::to_shared_buffer();
/// let telemetry = Telemetry::recording();
/// telemetry.set_trace(trace);
/// {
///     let _span = telemetry.span("support");
///     telemetry.event(Level::Info, "probing");
/// }
/// let text = sink.take_string();
/// let kinds: Vec<&str> = text
///     .lines()
///     .map(|l| if l.contains("span_open") { "open" } else { "other" })
///     .collect();
/// assert_eq!(kinds.len(), 3); // open, event, close
/// ```
#[derive(Clone)]
pub struct TraceWriter {
    shared: Arc<TraceShared>,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceWriter")
    }
}

impl TraceWriter {
    /// A trace stream over any writer. The monotonic clock starts now.
    pub fn to_writer(out: Box<dyn Write + Send>) -> TraceWriter {
        TraceWriter {
            shared: Arc::new(TraceShared {
                start: Instant::now(),
                inner: Mutex::new(TraceInner {
                    out,
                    lines: 0,
                    failed: false,
                }),
                locals: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A trace stream writing to (truncating) the file at `path`,
    /// buffered between structural events.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<TraceWriter> {
        let file = std::fs::File::create(path)?;
        Ok(TraceWriter::to_writer(Box::new(std::io::BufWriter::new(
            file,
        ))))
    }

    /// A trace stream into an in-memory buffer, plus a handle to read
    /// it back — for tests.
    pub fn to_shared_buffer() -> (TraceWriter, SharedBuffer) {
        let buffer = SharedBuffer::default();
        (TraceWriter::to_writer(Box::new(buffer.clone())), buffer)
    }

    /// Emits one event line. `fields` are appended after the standard
    /// `t_us` / `kind` / `stage` / `tid` quadruple.
    pub fn emit(&self, kind: &str, stage: &str, fields: &[(&'static str, Json)]) {
        let t_us = u64::try_from(self.shared.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let line = format_line(t_us, current_tid(), kind, stage, fields);
        // blocking-ok: direct emit is for rare structural events; hot
        // loops emit through the lock-free `TraceLocal` buffer.
        let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
        if !inner.write_text(&line) {
            return;
        }
        // Structural events are rare and mark progress worth keeping
        // on disk; per-node / per-pass / metrics events ride the
        // buffer.
        if !matches!(kind, "node" | "pass" | "metrics") {
            let _ = inner.out.flush();
        }
    }

    /// A per-thread buffered emitter bound to the given span path.
    ///
    /// The local formats events into a private buffer and hands them
    /// to the shared sink only when the buffer fills, when
    /// [`TraceLocal::flush`] is called, or on drop (the join point).
    /// The writer keeps a weak registration so [`TraceWriter::flush`]
    /// can drain buffers the owning threads have not flushed yet.
    pub fn local(&self, stage: &str) -> TraceLocal {
        let buf = Arc::new(Mutex::new(String::new()));
        // blocking-ok: registration lock taken once per span, not per
        // event.
        self.shared
            .locals
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::downgrade(&buf));
        TraceLocal {
            sink: Some(LocalSink {
                shared: Arc::clone(&self.shared),
                buf,
            }),
            flight: None,
            stage: stage.to_owned(),
        }
    }

    /// Lines successfully written so far (thread-local buffers count
    /// once drained).
    pub fn lines(&self) -> u64 {
        // blocking-ok: stats accessor used by tests and reports, not
        // the per-event path.
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .lines
    }

    /// Drains every registered per-thread buffer into the sink, then
    /// flushes the underlying writer.
    pub fn flush(&self) {
        let chunks: Vec<String> = {
            // blocking-ok: flush is a join point (span close, dump,
            // finish), not the per-event path.
            let mut locals = self.shared.locals.lock().unwrap_or_else(|p| p.into_inner());
            locals.retain(|w| w.strong_count() > 0);
            locals
                .iter()
                .filter_map(Weak::upgrade)
                // blocking-ok: same join point as above.
                .map(|buf| std::mem::take(&mut *buf.lock().unwrap_or_else(|p| p.into_inner())))
                .filter(|s| !s.is_empty())
                .collect()
        };
        // blocking-ok: same join point as above.
        let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
        for chunk in &chunks {
            inner.write_text(chunk);
        }
        let _ = inner.out.flush();
    }
}

/// How many buffered bytes a [`TraceLocal`] accumulates before handing
/// its chunk to the shared sink.
const LOCAL_FLUSH_BYTES: usize = 16 * 1024;

/// The trace-stream half of a [`TraceLocal`]: the shared sink plus the
/// thread's registered chunk buffer.
struct LocalSink {
    shared: Arc<TraceShared>,
    buf: Arc<Mutex<String>>,
}

/// A per-thread buffered trace emitter (see [`TraceWriter::local`]).
///
/// Events are stamped with the monotonic timestamp and the emitting
/// thread's `tid` at [`TraceLocal::emit`] time, then buffered; the
/// shared sink's mutex is touched only per ~16 KiB chunk. Dropping the
/// local flushes it — that is the merge-at-join point.
///
/// A local can also (or only) feed the always-on
/// [`FlightRecorder`](crate::FlightRecorder): when no `--trace` stream
/// is attached, [`Telemetry::trace_local`](crate::Telemetry::trace_local)
/// hands out flight-only locals so the hot path keeps recording into
/// the bounded per-thread rings. Flight events are stamped with the
/// flight recorder's own clock (the one the rest of the dump uses), so
/// each sink sees a consistent timeline.
pub struct TraceLocal {
    sink: Option<LocalSink>,
    flight: Option<crate::FlightRecorder>,
    stage: String,
}

impl TraceLocal {
    /// A local that records only into the flight recorder's rings.
    pub(crate) fn flight_only(flight: crate::FlightRecorder, stage: &str) -> TraceLocal {
        TraceLocal {
            sink: None,
            flight: Some(flight),
            stage: stage.to_owned(),
        }
    }

    /// Attaches a flight recorder: subsequent events go to both the
    /// trace stream and the calling thread's flight ring.
    pub(crate) fn with_flight(mut self, flight: crate::FlightRecorder) -> TraceLocal {
        self.flight = Some(flight);
        self
    }

    /// Buffers one event line under the local's captured stage path.
    pub fn emit(&self, kind: &str, fields: &[(&'static str, Json)]) {
        if let Some(sink) = &self.sink {
            let t_us = u64::try_from(sink.shared.start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let line = format_line(t_us, current_tid(), kind, &self.stage, fields);
            let full = {
                // blocking-ok: per-thread buffer mutex — only this
                // thread and the draining flusher ever touch it, so it
                // is uncontended in steady state.
                let mut buf = sink.buf.lock().unwrap_or_else(|p| p.into_inner());
                buf.push_str(&line);
                buf.len() >= LOCAL_FLUSH_BYTES
            };
            if full {
                self.flush();
            }
        }
        if let Some(flight) = &self.flight {
            // Re-stamped with the flight clock so the ring's timeline
            // matches the other lines in an eventual dump.
            flight.record_event(kind, &self.stage, fields);
        }
    }

    /// Hands the buffered chunk to the shared sink (without forcing
    /// the sink itself to disk — buffered kinds ride the `BufWriter`).
    /// Flight-ring events need no flushing (the ring is the store).
    pub fn flush(&self) {
        let Some(sink) = &self.sink else { return };
        // blocking-ok: buffer hand-off at the fill/close boundary, not
        // per event.
        let chunk = std::mem::take(&mut *sink.buf.lock().unwrap_or_else(|p| p.into_inner()));
        if chunk.is_empty() {
            return;
        }
        // blocking-ok: same fill/close boundary as above.
        let mut inner = sink.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.write_text(&chunk);
    }
}

impl Drop for TraceLocal {
    fn drop(&mut self) {
        self.flush();
        let Some(sink) = &self.sink else { return };
        // Unregister eagerly so the writer's registry stays small even
        // if flush() is never called on the writer itself.
        sink.shared
            .locals
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|w| w.strong_count() > 0 && !w.ptr_eq(&Arc::downgrade(&sink.buf)));
    }
}

/// An in-memory `Write` sink shared between a [`TraceWriter`] and a
/// test that wants to inspect what was written.
#[derive(Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// Takes the accumulated bytes as UTF-8 text (lossy), leaving the
    /// buffer empty.
    pub fn take_string(&self) -> String {
        let mut bytes = self.bytes.lock().unwrap_or_else(|p| p.into_inner());
        String::from_utf8_lossy(&std::mem::take(&mut *bytes)).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // blocking-ok: in-memory test sink; the mutex guards a Vec.
        self.bytes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_line_is_valid_compact_json_with_the_standard_envelope() {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        trace.emit("event", "learn/fbdt", &[("message", Json::from("hi"))]);
        trace.emit("checkpoint", "", &[("remaining_us", Json::Null)]);
        assert_eq!(trace.lines(), 2);
        let text = sink.take_string();
        let mut prev_t = 0;
        for line in text.lines() {
            let parsed = Json::parse(line).expect("each line parses alone");
            let t = parsed.get("t_us").and_then(Json::as_u64).expect("t_us");
            assert!(t >= prev_t, "timestamps are monotone");
            prev_t = t;
            assert!(parsed.get("kind").and_then(Json::as_str).is_some());
            assert!(parsed.get("stage").and_then(Json::as_str).is_some());
            assert!(
                parsed.get("tid").and_then(Json::as_u64).is_some(),
                "every event carries a tid: {line}"
            );
        }
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn clones_share_the_stream() {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let t2 = trace.clone();
        trace.emit("a", "", &[]);
        t2.emit("b", "", &[]);
        assert_eq!(trace.lines(), 2);
        assert_eq!(sink.take_string().lines().count(), 2);
    }

    struct FailingSink;
    impl Write for FailingSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failures_drop_events_instead_of_panicking() {
        let trace = TraceWriter::to_writer(Box::new(FailingSink));
        trace.emit("event", "", &[]);
        trace.emit("event", "", &[]);
        assert_eq!(trace.lines(), 0);
    }

    #[test]
    fn local_buffers_until_dropped_then_lines_appear() {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        {
            let local = trace.local("learn/fbdt");
            local.emit("node", &[("depth", Json::from(3u64))]);
            local.emit("node", &[("depth", Json::from(4u64))]);
            // Still buffered: nothing in the sink yet.
            assert_eq!(trace.lines(), 0);
        }
        assert_eq!(trace.lines(), 2, "drop flushes the local buffer");
        let text = sink.take_string();
        for line in text.lines() {
            let parsed = Json::parse(line).expect("valid JSON");
            assert_eq!(
                parsed.get("stage").and_then(Json::as_str),
                Some("learn/fbdt")
            );
            assert!(parsed.get("tid").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn writer_flush_drains_live_locals() {
        let (trace, sink) = TraceWriter::to_shared_buffer();
        let local = trace.local("fbdt");
        local.emit("node", &[]);
        assert_eq!(trace.lines(), 0);
        // The drop guard path: flush() on the writer must rescue lines
        // still sitting in per-thread buffers.
        trace.flush();
        assert_eq!(trace.lines(), 1);
        assert_eq!(sink.take_string().lines().count(), 1);
        drop(local);
    }

    #[test]
    fn local_chunk_flushes_on_size_threshold() {
        let (trace, _sink) = TraceWriter::to_shared_buffer();
        let local = trace.local("fbdt");
        let payload = "x".repeat(512);
        let mut emitted = 0u64;
        while trace.lines() == 0 {
            local.emit("node", &[("pad", Json::from(payload.as_str()))]);
            emitted += 1;
            assert!(emitted < 1_000, "size threshold never triggered");
        }
        assert_eq!(trace.lines(), emitted, "the whole chunk lands at once");
    }

    #[test]
    fn tids_are_stable_within_a_thread() {
        assert_eq!(current_tid(), current_tid());
        let here = current_tid();
        let there = std::thread::spawn(current_tid).join().expect("join");
        assert_ne!(here, there, "each thread gets its own tid");
    }
}
