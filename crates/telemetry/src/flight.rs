//! The always-on flight recorder: bounded per-thread rings of recent
//! trace events.
//!
//! A [`FlightRecorder`] keeps the last ~N bytes of trace-event lines
//! *per thread*, even when no `--trace` stream is attached, so a
//! crashed, faulted or signalled run can dump what it was doing right
//! before the incident — an aircraft black box for learning runs. The
//! dump is well-formed JSONL in the same envelope as the trace stream
//! (`t_us` / `kind` / `stage` / `tid`), so `trace summary` and
//! `trace export --chrome` read it unchanged.
//!
//! # Design
//!
//! Each thread that records gets its own [`FlightRing`]: a fixed
//! power-of-two byte ring packed into `AtomicU64` words, written only
//! by its owner thread and snapshot by any thread (the dumper) under a
//! seqlock:
//!
//! - **writer** (owner thread only): store an odd sequence number
//!   (Relaxed), `fence(Release)`, write the line's bytes as relaxed
//!   word stores, store the new head (Relaxed), then store the even
//!   sequence number (Release).
//! - **reader** (any thread): load the sequence with Acquire (retry on
//!   odd), copy every word and the head with relaxed loads,
//!   `fence(Acquire)`, re-load the sequence (Relaxed); the copy is
//!   consistent iff the two sequence reads agree.
//!
//! The fence pair is what makes this sound under weak memory (Boehm,
//! *Can seqlocks get along with programming language memory models?*):
//! if any relaxed word load observes a store from write session *k*,
//! the release fence before that store and the acquire fence after the
//! load synchronize, so the reader's second sequence load must observe
//! at least session *k*'s odd store and the check fails. Conversely a
//! successful check means every word the reader copied predates the
//! even publication it acquired. Both directions are model-checked by
//! the weak-memory loom suite (`tests/loom_flight.rs`) and the race
//! detector (`tests/race_paths.rs`).
//!
//! Because a whole line is appended inside one write session, a
//! consistent snapshot always ends on a line boundary; after the ring
//! wraps, the (possibly torn) oldest line is trimmed at the first
//! newline. Oldest events are evicted, never torn — pinned by the
//! wraparound property test.

use std::cell::RefCell;
use std::path::PathBuf;
use std::time::Instant;

use crate::json::Json;
use crate::sync::atomic::{fence, AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use crate::trace::{current_tid, format_line};

/// Default per-thread ring capacity in bytes (~a few hundred recent
/// events per thread).
pub const DEFAULT_RING_BYTES: usize = 32 * 1024;

/// How many consistent-copy attempts a snapshot makes before giving up
/// on a ring whose owner is writing continuously.
#[cfg(not(loom))]
const SNAPSHOT_RETRIES: usize = 1_000;
/// Tiny retry budget under the model checker: every load in an attempt
/// is a value branch point, so the production budget would explode the
/// state space without adding coverage (the protocol's correctness
/// does not depend on how often the reader retries).
#[cfg(loom)]
const SNAPSHOT_RETRIES: usize = 3;

/// A single-writer byte ring of recent trace lines under a seqlock
/// (see the [module docs](self) for the protocol and its correctness
/// argument).
///
/// `append` must only be called by the ring's owner thread;
/// [`FlightRecorder`] enforces that by handing each thread its own
/// ring. `snapshot` is safe from any thread at any time.
pub struct FlightRing {
    /// Seqlock generation: odd while the owner is mid-append.
    seq: AtomicU64,
    /// Total bytes ever appended; the live window is
    /// `[head - min(head, capacity), head)`.
    head: AtomicU64,
    /// The ring bytes, packed little-endian into words. The byte at
    /// absolute position `p` lives in `words[(p % capacity) / 8]` at
    /// bit offset `8 * (p % 8)` (capacity is a multiple of 8, so a
    /// word never spans the wrap).
    words: Box<[AtomicU64]>,
    /// Lines skipped because they exceeded the ring capacity.
    oversize: AtomicU64,
}

impl FlightRing {
    /// A ring holding the most recent `capacity` bytes of lines.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a power of two and at least 8 (so
    /// bytes pack into whole words and `% capacity` stays cheap).
    pub fn new(capacity: usize) -> FlightRing {
        // panic-ok: documented `# Panics` contract guard, once per ring
        // construction (not per append).
        assert!(
            capacity >= 8 && capacity.is_power_of_two(),
            "ring capacity must be a power of two >= 8, got {capacity}"
        );
        FlightRing {
            seq: AtomicU64::new(0),
            head: AtomicU64::new(0),
            words: (0..capacity / 8).map(|_| AtomicU64::new(0)).collect(),
            oversize: AtomicU64::new(0),
        }
    }

    /// The ring capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.words.len() * 8
    }

    /// Lines dropped because they were larger than the whole ring.
    pub fn oversize_dropped(&self) -> u64 {
        self.oversize.load(Ordering::Relaxed)
    }

    /// Appends one `\n`-terminated line, evicting the oldest bytes.
    ///
    /// Owner thread only (single writer): concurrent `append`s on the
    /// same ring would corrupt the seqlock generation.
    pub fn append(&self, line: &[u8]) {
        let capacity = self.capacity();
        if line.is_empty() {
            return;
        }
        if line.len() > capacity {
            // relaxed-ok: an owner-thread statistic read back over the
            // same seqlock-published ring handle; no ordering needed.
            self.oversize.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Single writer: these two reads observe our own last stores.
        let head = self.head.load(Ordering::Relaxed);
        let seq = self.seq.load(Ordering::Relaxed);
        // relaxed-ok: the odd marker needs no ordering of its own — the
        // Release fence below orders it before every data store, which
        // is what readers rely on (see the module docs).
        self.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let mut pos = (head as usize) % capacity;
        let mut src = line;
        while !src.is_empty() {
            let word = pos / 8;
            let offset = pos % 8;
            let n = (8 - offset).min(src.len());
            let mut bits: u64 = 0;
            // panic-ok: `n <= src.len()` by the `min` above.
            for (i, &b) in src[..n].iter().enumerate() {
                bits |= u64::from(b) << ((offset + i) * 8);
            }
            if n == 8 {
                // relaxed-ok: seqlock data store; published by the even
                // sequence store below, torn reads rejected by the
                // reader's sequence recheck.
                // panic-ok: `pos < capacity`, so `word < capacity / 8
                // == words.len()`.
                self.words[word].store(bits, Ordering::Relaxed);
            } else {
                let mask = ((1u64 << (n * 8)) - 1) << (offset * 8);
                // panic-ok: same `word < words.len()` bound as above.
                let old = self.words[word].load(Ordering::Relaxed);
                // relaxed-ok: seqlock data store (single writer, so the
                // read-modify-write needs no atomicity); see above.
                // panic-ok: same `word < words.len()` bound as above.
                self.words[word].store((old & !mask) | bits, Ordering::Relaxed);
            }
            pos = (pos + n) % capacity;
            // panic-ok: `n <= src.len()` by the `min` above.
            src = &src[n..];
        }
        // relaxed-ok: seqlock data store — the head is part of the
        // protected payload, published by the Release store below.
        self.head.store(head + line.len() as u64, Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// A consistent copy of the ring's current contents: whole lines,
    /// oldest first, ending at the most recently appended line.
    ///
    /// Returns `None` when the owner kept writing through all retry
    /// attempts (the dump then skips this ring rather than block).
    pub fn snapshot(&self) -> Option<Vec<u8>> {
        let capacity = self.capacity();
        let mut copy: Vec<u64> = Vec::with_capacity(self.words.len());
        for _ in 0..SNAPSHOT_RETRIES {
            let seq1 = self.seq.load(Ordering::Acquire);
            if seq1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            copy.clear();
            for w in self.words.iter() {
                copy.push(w.load(Ordering::Relaxed));
            }
            let head = self.head.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let seq2 = self.seq.load(Ordering::Relaxed);
            if seq1 != seq2 {
                continue;
            }
            let len = head.min(capacity as u64);
            let mut bytes = Vec::with_capacity(len as usize);
            for p in (head - len)..head {
                let b = (p % capacity as u64) as usize;
                // panic-ok: `b < capacity`, so `b / 8 < copy.len()`.
                bytes.push((copy[b / 8] >> ((b % 8) * 8)) as u8);
            }
            if head > capacity as u64 {
                // Wrapped: the window may start mid-line; evict the
                // (partial) oldest line up to its newline. The newest
                // line is always *whole* in the window (its length is
                // at most the capacity), so a lone newline at the very
                // end means the window is exactly that line, aligned —
                // trimming would evict the newest event, not a stale
                // fragment.
                match bytes.iter().position(|&b| b == b'\n') {
                    Some(i) if i + 1 == bytes.len() => {}
                    Some(i) => {
                        bytes.drain(..=i);
                    }
                    None => bytes.clear(),
                }
            }
            return Some(bytes);
        }
        None
    }
}

/// Unique ids for recorder instances, so the per-thread ring cache can
/// never confuse two recorders (not even after an allocation reuses an
/// address).
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's `(recorder id, ring)` cache: resolving the ring on
    /// the hot path is a TLS hit plus a short scan, no lock.
    static RING_CACHE: RefCell<Vec<(u64, Arc<FlightRing>)>> = const { RefCell::new(Vec::new()) };
}

struct FlightShared {
    id: u64,
    start: Instant,
    ring_bytes: usize,
    /// Every ring ever handed out, tagged with its owner's trace tid.
    rings: Mutex<Vec<(u64, Arc<FlightRing>)>>,
}

/// The cheap-to-clone handle behind the always-on flight recorder: one
/// bounded [`FlightRing`] per recording thread, created lazily on the
/// thread's first event.
///
/// # Examples
///
/// ```
/// use cirlearn_telemetry::FlightRecorder;
///
/// let recorder = FlightRecorder::new(1024);
/// recorder.record_line("{\"t_us\":0,\"kind\":\"event\",\"stage\":\"\",\"tid\":0}\n");
/// let rings = recorder.snapshot_lines();
/// assert_eq!(rings.len(), 1);
/// assert!(rings[0].1.contains("\"kind\":\"event\""));
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    shared: Arc<FlightShared>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FlightRecorder")
    }
}

impl FlightRecorder {
    /// A recorder whose per-thread rings hold `ring_bytes` each
    /// (rounded up to a power of two, minimum 64). The monotonic event
    /// clock starts now.
    pub fn new(ring_bytes: usize) -> FlightRecorder {
        FlightRecorder {
            shared: Arc::new(FlightShared {
                // relaxed-ok: allocates a unique id; nothing is
                // published through it.
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                ring_bytes: ring_bytes.next_power_of_two().max(64),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Microseconds since the recorder was created — the `t_us` clock
    /// every flight line is stamped with, so a dump is monotone per
    /// tid.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.shared.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The calling thread's ring, created and registered on first use.
    fn ring(&self) -> Arc<FlightRing> {
        RING_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.shared.id) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(FlightRing::new(self.shared.ring_bytes));
            // blocking-ok: registry lock taken once per thread's FIRST
            // event (ring creation); steady-state appends go through
            // the cached lock-free ring.
            self.shared
                .rings
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push((current_tid(), Arc::clone(&ring)));
            // Bound the cache: a thread outliving many recorders (test
            // runners) would otherwise pin every dead recorder's ring.
            if cache.len() >= 8 {
                cache.remove(0);
            }
            cache.push((self.shared.id, Arc::clone(&ring)));
            ring
        })
    }

    /// Appends one pre-formatted `\n`-terminated JSONL line to the
    /// calling thread's ring.
    pub fn record_line(&self, line: &str) {
        self.ring().append(line.as_bytes());
    }

    /// Formats and records one event in the standard trace envelope,
    /// stamped with the flight clock and the calling thread's tid.
    pub fn record_event(&self, kind: &str, stage: &str, fields: &[(&'static str, Json)]) {
        let line = format_line(self.now_us(), current_tid(), kind, stage, fields);
        self.record_line(&line);
    }

    /// Formats one event line in the standard envelope *without*
    /// recording it — for dump trailers that must not mutate the rings
    /// they were snapshot from.
    pub fn format_event(&self, kind: &str, stage: &str, fields: &[(&'static str, Json)]) -> String {
        format_line(self.now_us(), current_tid(), kind, stage, fields)
    }

    /// Total lines dropped (across rings) for exceeding the ring size.
    pub fn oversize_dropped(&self) -> u64 {
        let rings = self.shared.rings.lock().unwrap_or_else(|p| p.into_inner());
        rings.iter().map(|(_, r)| r.oversize_dropped()).sum()
    }

    /// Consistent snapshots of every thread's ring, sorted by tid:
    /// `(tid, whole JSONL lines oldest-first)`. Rings whose owners kept
    /// writing through every retry are skipped.
    pub fn snapshot_lines(&self) -> Vec<(u64, String)> {
        let rings: Vec<(u64, Arc<FlightRing>)> = {
            // blocking-ok: snapshot/dump path (crash or debug dump),
            // not the per-event append path.
            let rings = self.shared.rings.lock().unwrap_or_else(|p| p.into_inner());
            rings.iter().map(|(tid, r)| (*tid, Arc::clone(r))).collect()
        };
        let mut out: Vec<(u64, String)> = rings
            .iter()
            .filter_map(|(tid, ring)| {
                let bytes = ring.snapshot()?;
                if bytes.is_empty() {
                    return None;
                }
                Some((*tid, String::from_utf8_lossy(&bytes).into_owned()))
            })
            .collect();
        out.sort_by_key(|(tid, _)| *tid);
        out
    }

    /// Assembles a complete dump: every ring's recent lines (sorted by
    /// tid) followed by `trailer` (lines the dumper formats *after*
    /// snapshotting, e.g. the `flight` marker and final
    /// `metrics`/`attr` events — appended rather than recorded so they
    /// cannot race the snapshot they describe).
    pub fn dump_to_string(&self, trailer: &str) -> String {
        let mut out = String::new();
        for (_, text) in self.snapshot_lines() {
            out.push_str(&text);
        }
        out.push_str(trailer);
        out
    }

    /// Writes a dump atomically (tmp + fsync + rename) to `path`.
    pub fn dump_to_file(&self, path: &PathBuf, trailer: &str) -> std::io::Result<()> {
        crate::persist::write_atomic(path, self.dump_to_string(trailer))
    }
}

#[cfg(all(test, not(any(loom, race))))]
mod tests {
    use super::*;

    #[test]
    fn recent_lines_survive_and_oldest_are_evicted_whole() {
        let ring = FlightRing::new(64);
        for i in 0..100u32 {
            ring.append(format!("line-{i:04}\n").as_bytes());
        }
        let bytes = ring.snapshot().expect("no writer racing");
        let text = String::from_utf8(bytes).expect("valid utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        // The newest line is always the last one, intact.
        assert_eq!(*lines.last().expect("nonempty"), "line-0099");
        // Every surviving line is whole (no torn prefix survived the
        // wrap trim) and they are consecutive.
        for (k, line) in lines.iter().enumerate() {
            let i: u32 = line
                .strip_prefix("line-")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("torn line {line:?}"));
            assert_eq!(i as usize, 100 - lines.len() + k, "lines are consecutive");
        }
    }

    #[test]
    fn snapshot_of_an_unwrapped_ring_is_exact() {
        let ring = FlightRing::new(1024);
        ring.append(b"alpha\n");
        ring.append(b"beta\n");
        let text = String::from_utf8(ring.snapshot().expect("consistent")).expect("utf-8");
        assert_eq!(text, "alpha\nbeta\n");
    }

    #[test]
    fn oversize_lines_are_counted_and_dropped() {
        let ring = FlightRing::new(8);
        ring.append(b"this line is far larger than the ring\n");
        assert_eq!(ring.oversize_dropped(), 1);
        assert_eq!(ring.snapshot().expect("consistent"), Vec::<u8>::new());
    }

    #[test]
    fn recorder_registers_one_ring_per_thread() {
        let recorder = FlightRecorder::new(256);
        recorder.record_line("{\"t_us\":1,\"kind\":\"a\",\"stage\":\"\",\"tid\":0}\n");
        recorder.record_line("{\"t_us\":2,\"kind\":\"b\",\"stage\":\"\",\"tid\":0}\n");
        let r2 = recorder.clone();
        std::thread::spawn(move || {
            r2.record_line("{\"t_us\":1,\"kind\":\"c\",\"stage\":\"\",\"tid\":1}\n");
        })
        .join()
        .expect("join");
        let rings = recorder.snapshot_lines();
        assert_eq!(rings.len(), 2, "one ring per recording thread");
        assert!(rings[0].0 < rings[1].0, "sorted by tid");
        let all: String = rings.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(all.lines().count(), 3);
    }

    #[test]
    fn record_event_lines_parse_with_the_standard_envelope() {
        let recorder = FlightRecorder::new(1024);
        recorder.record_event("event", "learn/fbdt", &[("message", Json::from("hi"))]);
        let rings = recorder.snapshot_lines();
        assert_eq!(rings.len(), 1);
        let parsed = Json::parse(rings[0].1.trim()).expect("valid JSON");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("event"));
        assert_eq!(
            parsed.get("stage").and_then(Json::as_str),
            Some("learn/fbdt")
        );
        assert_eq!(
            parsed.get("tid").and_then(Json::as_u64),
            Some(rings[0].0),
            "the registered tid matches the stamped one"
        );
        assert!(parsed.get("t_us").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn dump_appends_the_trailer_after_every_ring() {
        let recorder = FlightRecorder::new(1024);
        recorder.record_event("node", "fbdt", &[]);
        let trailer = recorder.format_event("flight", "", &[("reason", Json::from("test"))]);
        let dump = recorder.dump_to_string(&trailer);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"flight\""));
        // Per-tid monotone: the trailer is stamped later than the ring
        // lines of the same (dumping) thread.
        let t0 = Json::parse(lines[0])
            .expect("parses")
            .get("t_us")
            .and_then(Json::as_u64)
            .expect("t_us");
        let t1 = Json::parse(lines[1])
            .expect("parses")
            .get("t_us")
            .and_then(Json::as_u64)
            .expect("t_us");
        assert!(t0 <= t1);
    }

    #[test]
    fn distinct_recorders_do_not_share_rings() {
        let a = FlightRecorder::new(256);
        let b = FlightRecorder::new(256);
        a.record_line("{\"t_us\":1,\"kind\":\"a\",\"stage\":\"\",\"tid\":0}\n");
        b.record_line("{\"t_us\":1,\"kind\":\"b\",\"stage\":\"\",\"tid\":0}\n");
        let at: String = a.snapshot_lines().into_iter().map(|(_, t)| t).collect();
        let bt: String = b.snapshot_lines().into_iter().map(|(_, t)| t).collect();
        assert!(at.contains("\"kind\":\"a\"") && !at.contains("\"kind\":\"b\""));
        assert!(bt.contains("\"kind\":\"b\"") && !bt.contains("\"kind\":\"a\""));
    }
}
