//! The live status channel: the compact run snapshot `--status <path>`
//! atomically rewrites and `cirlearn top` renders.
//!
//! A [`StatusSnapshot`] is a single small JSON document — not a log —
//! holding where the run is *right now*: the output-progress cursor,
//! cumulative query/gate ledgers, the queries/s and peak-RSS gauges
//! from the periodic `metrics` snapshots, the top-K attribution cells
//! by oracle time, and checkpoint counters. The telemetry layer
//! rewrites it through [`write_atomic`](crate::persist::write_atomic)
//! on the 250ms metrics throttle, so a reader (another process, a
//! dashboard, `cirlearn top --follow`) always sees either the previous
//! complete snapshot or the next one, never a torn file.
//!
//! Parsing is tolerant in the same way run reports are: missing fields
//! default, unknown fields are ignored, so old readers keep working
//! when fields are added.

use std::collections::BTreeMap;

use crate::json::Json;

/// Version stamp written into every status snapshot.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// One attribution cell on the status channel: the cost a
/// `(top-level stage, output)` pair has accumulated so far.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusAttr {
    /// Top-level stage name (`support`, `fbdt`, `optimize`, ...).
    pub stage: String,
    /// Output index, when the cost was attributed to one.
    pub output: Option<u64>,
    /// Oracle queries attributed to this cell.
    pub queries: u64,
    /// Oracle nanoseconds attributed to this cell.
    pub query_ns: u64,
    /// AND gates built under this cell.
    pub gates: u64,
}

impl StatusAttr {
    fn to_json(&self) -> Json {
        Json::object([
            ("stage", Json::from(self.stage.as_str())),
            ("output", self.output.map(Json::from).unwrap_or(Json::Null)),
            ("queries", Json::from(self.queries)),
            ("query_ns", Json::from(self.query_ns)),
            ("gates", Json::from(self.gates)),
        ])
    }

    fn from_json(value: &Json) -> StatusAttr {
        let u64_of = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        StatusAttr {
            stage: value
                .get("stage")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            output: value.get("output").and_then(Json::as_u64),
            queries: u64_of("queries"),
            query_ns: u64_of("query_ns"),
            gates: u64_of("gates"),
        }
    }
}

/// The live run-status snapshot (see the [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusSnapshot {
    /// The writing process's pid (so `top` can tell whether the run is
    /// still alive).
    pub pid: u64,
    /// Run annotations (case name, seed, ...), mirrored from the
    /// telemetry meta table.
    pub meta: BTreeMap<String, String>,
    /// Seconds since the run's telemetry started.
    pub elapsed_s: f64,
    /// The `/`-joined span path active when the snapshot was taken.
    pub stage: String,
    /// Cumulative oracle queries.
    pub queries: u64,
    /// Queries/s over the last metrics interval.
    pub queries_per_s: u64,
    /// Current AIG node-count gauge.
    pub aig_nodes: u64,
    /// Peak resident set size in kB (0 when the platform hides it).
    pub peak_rss_kb: u64,
    /// Outputs finished so far.
    pub outputs_done: u64,
    /// Outputs the run will learn in total (0 until the learner
    /// publishes its plan).
    pub outputs_total: u64,
    /// Checkpoints written so far.
    pub ckpt_writes: u64,
    /// Size in bytes of the most recent checkpoint payload.
    pub ckpt_bytes: u64,
    /// Outputs degraded to fallback circuits so far.
    pub degraded_outputs: u64,
    /// Top-K attribution cells by oracle nanoseconds, largest first.
    pub attribution: Vec<StatusAttr>,
    /// Whether the run has finished (the final snapshot sets this).
    pub done: bool,
}

impl StatusSnapshot {
    /// How many attribution cells a snapshot carries at most.
    pub const TOP_K: usize = 5;

    /// Serializes the snapshot (stable field order, schema-stamped).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("status_schema_version", Json::from(STATUS_SCHEMA_VERSION)),
            ("pid", Json::from(self.pid)),
            (
                "meta",
                Json::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ),
            ("elapsed_s", Json::from(self.elapsed_s)),
            ("stage", Json::from(self.stage.as_str())),
            ("queries", Json::from(self.queries)),
            ("queries_per_s", Json::from(self.queries_per_s)),
            ("aig_nodes", Json::from(self.aig_nodes)),
            ("peak_rss_kb", Json::from(self.peak_rss_kb)),
            ("outputs_done", Json::from(self.outputs_done)),
            ("outputs_total", Json::from(self.outputs_total)),
            ("ckpt_writes", Json::from(self.ckpt_writes)),
            ("ckpt_bytes", Json::from(self.ckpt_bytes)),
            ("degraded_outputs", Json::from(self.degraded_outputs)),
            (
                "attribution",
                Json::Array(self.attribution.iter().map(StatusAttr::to_json).collect()),
            ),
            ("done", Json::Bool(self.done)),
        ])
    }

    /// Deserializes a snapshot, tolerating missing fields (defaults)
    /// and unknown ones (ignored) so readers survive schema growth.
    pub fn from_json(value: &Json) -> StatusSnapshot {
        let u64_of = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        StatusSnapshot {
            pid: u64_of("pid"),
            meta: value
                .get("meta")
                .and_then(Json::as_object)
                .map(|pairs| {
                    pairs
                        .iter()
                        .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_owned())))
                        .collect()
                })
                .unwrap_or_default(),
            elapsed_s: value.get("elapsed_s").and_then(Json::as_f64).unwrap_or(0.0),
            stage: value
                .get("stage")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            queries: u64_of("queries"),
            queries_per_s: u64_of("queries_per_s"),
            aig_nodes: u64_of("aig_nodes"),
            peak_rss_kb: u64_of("peak_rss_kb"),
            outputs_done: u64_of("outputs_done"),
            outputs_total: u64_of("outputs_total"),
            ckpt_writes: u64_of("ckpt_writes"),
            ckpt_bytes: u64_of("ckpt_bytes"),
            degraded_outputs: u64_of("degraded_outputs"),
            attribution: value
                .get("attribution")
                .and_then(Json::as_array)
                .map(|items| items.iter().map(StatusAttr::from_json).collect())
                .unwrap_or_default(),
            done: matches!(value.get("done"), Some(Json::Bool(true))),
        }
    }

    /// Parses a snapshot file's contents.
    pub fn parse(text: &str) -> Result<StatusSnapshot, crate::json::ParseError> {
        Ok(StatusSnapshot::from_json(&Json::parse(text)?))
    }

    /// Renders the snapshot as the multi-line text `cirlearn top`
    /// prints: a header, the gauges, the progress bar and the
    /// attribution table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let case = self
            .meta
            .get("case")
            .map(String::as_str)
            .unwrap_or("(unnamed run)");
        let state = if self.done { "done" } else { "running" };
        let _ = writeln!(
            out,
            "cirlearn {case} — pid {} — {state} — {:.1}s elapsed",
            self.pid, self.elapsed_s
        );
        let stage = if self.stage.is_empty() {
            "(top level)"
        } else {
            &self.stage
        };
        let _ = writeln!(out, "stage     {stage}");
        let _ = writeln!(
            out,
            "progress  {}/{} outputs{}",
            self.outputs_done,
            self.outputs_total,
            render_bar(self.outputs_done, self.outputs_total)
        );
        let _ = writeln!(
            out,
            "oracle    {} queries ({} q/s)",
            self.queries, self.queries_per_s
        );
        let _ = writeln!(
            out,
            "circuit   {} AIG nodes — peak RSS {} kB",
            self.aig_nodes, self.peak_rss_kb
        );
        let _ = writeln!(
            out,
            "ckpt      {} written, last {} bytes — {} degraded outputs",
            self.ckpt_writes, self.ckpt_bytes, self.degraded_outputs
        );
        if !self.attribution.is_empty() {
            let _ = writeln!(out, "hottest (stage, output) cells by oracle time:");
            for attr in &self.attribution {
                let output = match attr.output {
                    Some(o) => format!("y{o}"),
                    None => "-".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "  {:<12} {:>6}  {:>10} queries  {:>9.3}s  {:>8} gates",
                    attr.stage,
                    output,
                    attr.queries,
                    attr.query_ns as f64 / 1e9,
                    attr.gates
                );
            }
        }
        out
    }
}

fn render_bar(done: u64, total: u64) -> String {
    if total == 0 {
        return String::new();
    }
    const WIDTH: u64 = 20;
    let filled = (done.min(total) * WIDTH) / total;
    let mut bar = String::from("  [");
    for i in 0..WIDTH {
        bar.push(if i < filled { '#' } else { '.' });
    }
    bar.push(']');
    bar
}

#[cfg(all(test, not(any(loom, race))))]
mod tests {
    use super::*;

    fn sample() -> StatusSnapshot {
        StatusSnapshot {
            pid: 4242,
            meta: [("case".to_owned(), "case_03".to_owned())].into(),
            elapsed_s: 12.5,
            stage: "learn/fbdt".to_owned(),
            queries: 100_000,
            queries_per_s: 8_000,
            aig_nodes: 512,
            peak_rss_kb: 20_480,
            outputs_done: 3,
            outputs_total: 8,
            ckpt_writes: 2,
            ckpt_bytes: 9_999,
            degraded_outputs: 0,
            attribution: vec![StatusAttr {
                stage: "fbdt".to_owned(),
                output: Some(2),
                queries: 60_000,
                query_ns: 3_000_000_000,
                gates: 140,
            }],
            done: false,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let snap = sample();
        let text = snap.to_json().to_pretty();
        let back = StatusSnapshot::parse(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn tolerates_missing_and_unknown_fields() {
        let back = StatusSnapshot::parse("{\"pid\":7,\"future_field\":[1,2,3]}").expect("parses");
        assert_eq!(back.pid, 7);
        assert_eq!(back.queries, 0);
        assert!(back.attribution.is_empty());
        assert!(!back.done);
    }

    #[test]
    fn render_mentions_the_key_gauges() {
        let text = sample().render();
        assert!(text.contains("case_03"));
        assert!(text.contains("3/8 outputs"));
        assert!(text.contains("100000 queries"));
        assert!(text.contains("8000 q/s"));
        assert!(text.contains("fbdt"));
        assert!(text.contains('#'), "progress bar renders: {text}");
    }

    #[test]
    fn done_snapshot_renders_as_done() {
        let mut snap = sample();
        snap.done = true;
        assert!(snap.render().contains("done"));
    }

    #[test]
    fn bar_handles_zero_total() {
        assert_eq!(render_bar(0, 0), "");
        assert!(render_bar(5, 5).ends_with(']'));
    }
}
