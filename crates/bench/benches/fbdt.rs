//! Microbenchmarks for FBDT construction and exhaustive small-function
//! conquest — the two circuit-learning paths of paper §IV-D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cirlearn::fbdt::{build_fbdt, learn_exhaustive, FbdtConfig};
use cirlearn::sampling::seeded_rng;
use cirlearn::support::identify_support;
use cirlearn::{Budget, LearnerConfig};
use cirlearn_oracle::generate;
use cirlearn_telemetry::Telemetry;

fn bench_fbdt_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fbdt_build");
    group.sample_size(10);
    for &support in &[6usize, 10, 14] {
        group.bench_with_input(
            BenchmarkId::new("eco_cone", support),
            &support,
            |b, &sup| {
                let mut oracle = generate::eco_case_with_support(30, 1, sup, 5);
                let cfg = LearnerConfig::fast();
                let mut rng = seeded_rng(3);
                let info = identify_support(&mut oracle, 0, &cfg.support_sampling, &mut rng);
                b.iter(|| {
                    let mut rng = seeded_rng(4);
                    let (cover, stats) = build_fbdt(
                        &mut oracle,
                        0,
                        &info.support,
                        info.truth_ratio,
                        &FbdtConfig::fast(),
                        &Budget::unlimited(),
                        &mut rng,
                        &Telemetry::disabled(),
                    );
                    black_box((cover.sop.cubes().len(), stats.splits))
                });
            },
        );
    }
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_conquest");
    group.sample_size(10);
    for &k in &[8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut oracle = generate::eco_case_with_support(k + 4, 1, k, 9);
            let support: Vec<usize> = oracle.reveal().output_support(0);
            b.iter(|| {
                let mut rng = seeded_rng(5);
                let (cover, queries) = learn_exhaustive(&mut oracle, 0, &support, &mut rng);
                black_box((cover.sop.cubes().len(), queries))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fbdt_build, bench_exhaustive);
criterion_main!(benches);
