//! Microbenchmarks for the optimization passes (paper §IV-E: the ABC
//! substitution) on a deliberately redundant learned-SOP-style circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cirlearn_aig::{Aig, Edge};
use cirlearn_synth::{balance, collapse, fraig, rewrite, CollapseConfig, FraigConfig};

/// Builds a flat minterm-cover circuit of a function with heavy
/// sharing — the shape an FBDT's leaf cubes produce before
/// optimization.
fn redundant_sop(num_vars: usize) -> Aig {
    let mut g = Aig::new();
    let inputs = g.add_inputs("x", num_vars);
    let mut cubes = Vec::new();
    for m in 0..1u32 << num_vars {
        // Onset: (x0 & x1) | x2 written as minterms.
        let f = (m & 1 == 1 && m >> 1 & 1 == 1) || m >> 2 & 1 == 1;
        if f {
            let lits: Vec<Edge> = (0..num_vars)
                .map(|k| inputs[k].complement_if(m >> k & 1 == 0))
                .collect();
            cubes.push(g.and_many(&lits));
        }
    }
    let y = g.or_many(&cubes);
    g.add_output(y, "y");
    g
}

fn bench_passes(c: &mut Criterion) {
    let aig = redundant_sop(10);
    let mut group = c.benchmark_group("synthesis_passes");
    group.sample_size(10);
    group.bench_function("balance", |b| {
        b.iter(|| black_box(balance(&aig).gate_count()))
    });
    group.bench_function("rewrite", |b| {
        b.iter(|| black_box(rewrite(&aig).gate_count()))
    });
    group.bench_function("fraig", |b| {
        let cfg = FraigConfig {
            patterns: 512,
            ..FraigConfig::default()
        };
        b.iter(|| black_box(fraig(&aig, &cfg).gate_count()))
    });
    group.bench_function("collapse", |b| {
        b.iter(|| black_box(collapse(&aig, &CollapseConfig::default()).gate_count()))
    });
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    use cirlearn_synth::map::map_gates;
    let mut group = c.benchmark_group("tech_mapping");
    // An XOR-rich circuit (adder) where mapping pays off most.
    let mut adder = Aig::new();
    let a = adder.add_inputs("a", 16);
    let b = adder.add_inputs("b", 16);
    let s = adder.add_word(&a, &b);
    for (i, e) in s.iter().enumerate() {
        adder.add_output(*e, format!("s{i}"));
    }
    group.bench_function("map_adder16", |bch| {
        bch.iter(|| black_box(map_gates(&adder).gate_count()))
    });
    group.finish();
}

fn bench_espresso(c: &mut Criterion) {
    use cirlearn_logic::TruthTable;
    let mut group = c.benchmark_group("two_level");
    group.sample_size(10);
    for &n in &[6usize, 8] {
        let tt = TruthTable::from_fn(n, |m| m.wrapping_mul(0x9E37_79B9) >> 27 & 1 == 1);
        let minterms: cirlearn_logic::Sop = (0..1u64 << n)
            .filter(|&m| tt.get(m))
            .map(|m| {
                cirlearn_logic::Cube::from_literals(
                    (0..n as u32).map(|k| cirlearn_logic::Var::new(k).literal(m >> k & 1 == 1)),
                )
                .expect("consistent")
            })
            .collect();
        group.bench_function(format!("espresso_minimize_{n}v"), |b| {
            b.iter(|| black_box(cirlearn_synth::espresso::minimize(&minterms).cubes().len()))
        });
        group.bench_function(format!("isop_{n}v"), |b| {
            b.iter(|| black_box(tt.isop().cubes().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_passes, bench_mapping, bench_espresso);
criterion_main!(benches);
