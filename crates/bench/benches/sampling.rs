//! Microbenchmarks for `PatternSampling` — the inner loop whose cost
//! dominates the paper's runtime column (r = 7200 per support pass,
//! r = 60 per FBDT node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cirlearn::sampling::{pattern_sampling, seeded_rng, SamplingConfig};
use cirlearn_logic::Cube;
use cirlearn_oracle::generate;

fn bench_pattern_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_sampling");
    for &rounds in &[60usize, 240, 960] {
        group.bench_with_input(BenchmarkId::new("eco_40in", rounds), &rounds, |b, &r| {
            let mut oracle = generate::eco_case(40, 4, 7);
            let probe: Vec<usize> = (0..40).collect();
            let cfg = SamplingConfig {
                rounds: r,
                ratios: vec![0.5, 0.25, 0.75],
            };
            let mut rng = seeded_rng(1);
            b.iter(|| {
                let stats = pattern_sampling(&mut oracle, 0, &Cube::top(), &probe, &cfg, &mut rng);
                black_box(stats.truth_ratio)
            });
        });
    }
    group.finish();
}

fn bench_support_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("support_identification");
    group.sample_size(10);
    for &pi in &[40usize, 80, 160] {
        group.bench_with_input(BenchmarkId::from_parameter(pi), &pi, |b, &pi| {
            let mut oracle = generate::eco_case(pi, 2, 3);
            let cfg = SamplingConfig::fast();
            let mut rng = seeded_rng(2);
            b.iter(|| {
                let info = cirlearn::support::identify_support(&mut oracle, 0, &cfg, &mut rng);
                black_box(info.support.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pattern_sampling, bench_support_scaling);
criterion_main!(benches);
