//! End-to-end learning benchmarks on representative contest cases —
//! the per-case runtime column of Table II, at reduced scale.
//!
//! One case per category is benchmarked: a template-solved DIAG and
//! DATA case (fast path), and a small ECO and NEQ case (FBDT /
//! exhaustive path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::contest_suite;

fn bench_cases(c: &mut Criterion) {
    let suite = contest_suite();
    let mut group = c.benchmark_group("table2_cases");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    for name in ["case_16", "case_12", "case_13", "case_10"] {
        let case = suite
            .iter()
            .find(|cse| cse.name == name)
            .expect("case exists")
            .clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut oracle = case.build();
                let mut cfg = LearnerConfig::fast();
                cfg.time_budget = Duration::from_secs(10);
                let result = Learner::new(cfg).learn(&mut oracle);
                black_box(result.circuit.gate_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cases);
criterion_main!(benches);
