//! Microbenchmarks for the SAT and BDD substrates: equivalence-check
//! miters (fraig's inner engine) and BDD build + ISOP (collapse's inner
//! engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cirlearn_aig::Aig;
use cirlearn_bdd::Bdd;
use cirlearn_logic::TruthTable;
use cirlearn_sat::check_equivalence;

/// A w-bit ripple adder circuit.
fn adder(w: usize) -> Aig {
    let mut g = Aig::new();
    let a = g.add_inputs("a", w);
    let b = g.add_inputs("b", w);
    let s = g.add_word(&a, &b);
    for (i, e) in s.iter().enumerate() {
        g.add_output(*e, format!("s{i}"));
    }
    g
}

/// The same function built with operand order swapped (different
/// structure, same function).
fn adder_swapped(w: usize) -> Aig {
    let mut g = Aig::new();
    let a = g.add_inputs("a", w);
    let b = g.add_inputs("b", w);
    let s = g.add_word(&b, &a);
    for (i, e) in s.iter().enumerate() {
        g.add_output(*e, format!("s{i}"));
    }
    g
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_equivalence");
    group.sample_size(10);
    for &w in &[8usize, 16, 24] {
        group.bench_with_input(BenchmarkId::new("adder_miter", w), &w, |bch, &w| {
            let g1 = adder(w);
            let g2 = adder_swapped(w);
            bch.iter(|| black_box(check_equivalence(&g1, &g2).is_equivalent()));
        });
    }
    group.finish();
}

fn bench_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd");
    group.sample_size(10);
    for &n in &[10usize, 14] {
        let tt = TruthTable::from_fn(n, |m| m.wrapping_mul(0x45d9_f3b3) >> 19 & 1 == 1);
        group.bench_with_input(BenchmarkId::new("build_isop", n), &n, |bch, _| {
            bch.iter(|| {
                let mut bdd = Bdd::new(n);
                let f = bdd.from_truth_table(&tt);
                black_box(bdd.isop(f).cubes().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equivalence, bench_bdd);
criterion_main!(benches);
