//! Shared harness for regenerating the paper's evaluation.
//!
//! The binaries [`table2`](../table2/index.html) and
//! [`ablation`](../ablation/index.html) use this library to run
//! learners over the contest suite and print Table II-style rows
//! (size / accuracy / time per case and per contestant).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use cirlearn::baseline::{GreedyDtLearner, SampleSopLearner};
use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{evaluate_accuracy, ContestCase, EvalConfig};
use cirlearn_telemetry::Telemetry;

pub mod report;

/// Which learner produced a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contestant {
    /// The paper's approach (this crate's [`Learner`]).
    Ours,
    /// Baseline (i): greedy decision tree, no preprocessing.
    GreedyDt,
    /// Baseline (ii): sampled-minterm SOP memorization.
    SampleSop,
}

impl std::fmt::Display for Contestant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Contestant::Ours => "ours",
            Contestant::GreedyDt => "2nd-(i)",
            Contestant::SampleSop => "2nd-(ii)",
        };
        f.write_str(s)
    }
}

/// One table row: the three columns the paper reports per contestant.
#[derive(Debug, Clone)]
pub struct Row {
    /// Case name.
    pub case: String,
    /// Case category.
    pub category: String,
    /// Inputs / outputs of the case.
    pub pi: usize,
    /// Outputs of the case.
    pub po: usize,
    /// Who produced this row.
    pub contestant: Contestant,
    /// Gate count of the produced circuit.
    pub size: usize,
    /// Accuracy percentage (0–100).
    pub accuracy: f64,
    /// Wall-clock seconds spent learning.
    pub seconds: f64,
    /// Oracle queries spent.
    pub queries: u64,
    /// Whether the learner ran into the scale's time budget (some
    /// output's FBDT had to force leaves instead of expanding them).
    /// Budget-limited rows stop at a machine-speed-dependent point, so
    /// their query/gate counts are noisy across runs — `bench compare`
    /// widens its noise floors for records carrying this tag.
    pub budget_limited: bool,
}

/// Harness effort scale.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Learner wall-clock budget per case.
    pub budget: Duration,
    /// Evaluation patterns per group (paper: 500 000).
    pub eval_patterns: usize,
}

impl Scale {
    /// Smoke-test scale: tiny budgets and evaluation pattern counts,
    /// meant for a small case subset (the `bench` harness's CI mode).
    pub fn smoke() -> Self {
        Scale {
            budget: Duration::from_secs(3),
            eval_patterns: 2_000,
        }
    }

    /// Quick harness scale (CI-friendly; minutes for the whole table).
    pub fn quick() -> Self {
        Scale {
            budget: Duration::from_secs(15),
            eval_patterns: 20_000,
        }
    }

    /// Paper-faithful scale (500 k patterns per group; generous
    /// budgets). Expect a long run.
    pub fn full() -> Self {
        Scale {
            budget: Duration::from_secs(300),
            eval_patterns: 500_000,
        }
    }
}

/// Runs one contestant on one case and returns the row.
pub fn run_case(case: &ContestCase, contestant: Contestant, scale: &Scale) -> Row {
    run_case_with(case, contestant, scale, &Telemetry::disabled())
}

/// Like [`run_case`], but records the paper pipeline's spans, counters
/// and per-stage query attribution into `telemetry` (baselines are not
/// instrumented; only the [`Contestant::Ours`] learner reports).
pub fn run_case_with(
    case: &ContestCase,
    contestant: Contestant,
    scale: &Scale,
    telemetry: &Telemetry,
) -> Row {
    match contestant {
        Contestant::Ours => run_learner_case(case, LearnerConfig::fast(), scale, telemetry),
        Contestant::GreedyDt | Contestant::SampleSop => {
            let mut oracle = case.build();
            telemetry.set_meta("case", case.name);
            telemetry.set_meta("category", case.category);
            telemetry.set_meta("contestant", contestant);
            let start = Instant::now();
            let result = match contestant {
                Contestant::GreedyDt => GreedyDtLearner {
                    time_budget: scale.budget,
                    ..GreedyDtLearner::default()
                }
                .learn(&mut oracle),
                _ => SampleSopLearner::default().learn(&mut oracle),
            };
            let seconds = start.elapsed().as_secs_f64();
            finish_row(case, contestant, scale, &mut oracle, &result, seconds)
        }
    }
}

/// Runs the paper learner with an explicit configuration — the bench
/// harness's ablation suite toggles `cfg.preprocessing` through this.
/// The scale's budget overrides `cfg.time_budget`.
pub fn run_learner_case(
    case: &ContestCase,
    mut cfg: LearnerConfig,
    scale: &Scale,
    telemetry: &Telemetry,
) -> Row {
    let mut oracle = case.build();
    telemetry.set_meta("case", case.name);
    telemetry.set_meta("category", case.category);
    telemetry.set_meta("contestant", Contestant::Ours);
    cfg.time_budget = scale.budget;
    let start = Instant::now();
    let result = Learner::with_telemetry(cfg, telemetry.clone()).learn(&mut oracle);
    let seconds = start.elapsed().as_secs_f64();
    finish_row(case, Contestant::Ours, scale, &mut oracle, &result, seconds)
}

/// Scores a finished learning run against the hidden golden circuit
/// and assembles the table row.
fn finish_row(
    case: &ContestCase,
    contestant: Contestant,
    scale: &Scale,
    oracle: &mut cirlearn_oracle::CircuitOracle,
    result: &cirlearn::LearnResult,
    seconds: f64,
) -> Row {
    let acc = evaluate_accuracy(
        oracle.reveal(),
        &result.circuit,
        &EvalConfig {
            patterns_per_group: scale.eval_patterns,
            ..EvalConfig::default()
        },
    );
    Row {
        case: case.name.to_owned(),
        category: case.category.to_string(),
        pi: case.num_inputs,
        po: case.num_outputs,
        contestant,
        // Contest metric: 2-input primitive gates after technology
        // mapping (XOR/MUX detection), not raw AND nodes.
        size: cirlearn_synth::map::map_gates(&result.circuit).gate_count(),
        accuracy: acc.percent(),
        seconds,
        queries: result.queries,
        budget_limited: result.outputs.iter().any(|o| o.forced_leaves > 0),
    }
}

/// Prints rows grouped per case in the paper's column layout.
pub fn print_table(rows: &[Row], contestants: &[Contestant]) {
    print!("{:<9} {:<5} {:>4} {:>4} |", "case", "type", "#PI", "#PO");
    for c in contestants {
        print!(" {:>24} |", format!("{c}: size/acc%/time(s)"));
    }
    println!();
    let mut cases: Vec<&str> = rows.iter().map(|r| r.case.as_str()).collect();
    cases.dedup();
    for case in cases {
        let any = rows.iter().find(|r| r.case == case).expect("case exists");
        print!(
            "{:<9} {:<5} {:>4} {:>4} |",
            any.case, any.category, any.pi, any.po
        );
        for c in contestants {
            match rows.iter().find(|r| r.case == case && r.contestant == *c) {
                Some(r) => print!(" {:>9} {:>7.3} {:>6.1} |", r.size, r.accuracy, r.seconds),
                None => print!(" {:>24} |", "-"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_oracle::contest_suite;

    #[test]
    fn quick_row_on_smallest_case() {
        // case_16: DIAG 26x4, solved by templates in well under the
        // budget.
        let suite = contest_suite();
        let case = suite.iter().find(|c| c.name == "case_16").expect("exists");
        let scale = Scale {
            budget: Duration::from_secs(10),
            eval_patterns: 2_000,
        };
        let row = run_case(case, Contestant::Ours, &scale);
        assert_eq!(row.po, 4);
        assert!(row.accuracy > 99.9, "accuracy {}", row.accuracy);
        assert!(row.size < 500, "size {}", row.size);
    }

    #[test]
    fn table_printer_handles_missing_rows() {
        let rows = vec![Row {
            case: "case_x".into(),
            category: "ECO".into(),
            pi: 3,
            po: 1,
            contestant: Contestant::Ours,
            size: 5,
            accuracy: 100.0,
            seconds: 0.1,
            queries: 42,
            budget_limited: false,
        }];
        // Must not panic with a contestant that has no row.
        print_table(&rows, &[Contestant::Ours, Contestant::GreedyDt]);
    }
}
