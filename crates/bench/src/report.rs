//! Schema-versioned benchmark reports (`BENCH_*.json`) and the
//! regression comparison behind `bench compare`.
//!
//! A [`BenchReport`] is the machine-readable output of one harness
//! run: one [`BenchRecord`] per (case, contestant) pair, carrying the
//! contest metrics (size / accuracy / time / queries) plus the
//! latency-histogram summaries the telemetry layer collected during
//! the run. Reports are plain JSON so they can be archived as CI
//! artifacts and diffed across commits.
//!
//! # Schema (version 2)
//!
//! ```text
//! {
//!   "bench_schema_version": 2,
//!   "suite": "table2",            // which harness produced it
//!   "scale": "quick",             // smoke | quick | full
//!   "records": [
//!     {
//!       "name": "case_16",
//!       "contestant": "ours",
//!       "wall_s": 0.42,
//!       "queries": 12345,
//!       "gates": 210,
//!       "accuracy": 99.998,       // percent, 0-100
//!       "histograms": {           // name -> HistogramSummary JSON
//!         "oracle.query_ns": { "count": ..., "p50": ..., ... }
//!       },
//!       "attribution": {          // version 2: per-stage cost ledger
//!         "support": { "queries": 9600, "query_ns": 812345, "gates": 0 },
//!         "fbdt":    { "queries": 2745, "query_ns": 230000, "gates": 180 }
//!       }
//!     }
//!   ]
//! }
//! ```
//!
//! Unknown keys are ignored on read so readers tolerate additive
//! extensions. Version 2 added the per-stage `attribution` section
//! (summed over outputs from the run report's cost ledger); version-1
//! documents still parse — the section just comes back empty — while
//! any other version is rejected.

use std::collections::BTreeMap;

use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::HistogramSummary;

/// Version stamp written into every BENCH file. Bump on breaking
/// schema changes; additive fields keep the version.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Older schema versions [`BenchReport::from_json`] still accepts
/// (version 2 only added the `attribution` section, so version-1
/// documents parse unchanged).
pub const BENCH_COMPAT_VERSIONS: &[u64] = &[1, BENCH_SCHEMA_VERSION];

/// Per-stage cost from the run report's attribution ledger, summed
/// over outputs (BENCH files track stage-level drift; per-output
/// resolution stays in `--report` / trace files).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCost {
    /// Oracle queries attributed to the stage.
    pub queries: u64,
    /// Oracle nanoseconds attributed to the stage.
    pub query_ns: u64,
    /// AND gates built under the stage.
    pub gates: u64,
}

impl StageCost {
    fn to_json(self) -> Json {
        Json::object([
            ("queries", Json::Number(self.queries as f64)),
            ("query_ns", Json::Number(self.query_ns as f64)),
            ("gates", Json::Number(self.gates as f64)),
        ])
    }

    fn from_json(json: &Json) -> StageCost {
        let num = |key: &str| json.get(key).and_then(Json::as_u64).unwrap_or(0);
        StageCost {
            queries: num("queries"),
            query_ns: num("query_ns"),
            gates: num("gates"),
        }
    }
}

/// One benchmark result: the contest metrics of a single (case,
/// contestant) run plus its latency-histogram summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (e.g. `case_16`, or `case_17/no-preproc` for an
    /// ablated configuration).
    pub name: String,
    /// Which learner produced the result (e.g. `ours`).
    pub contestant: String,
    /// Wall-clock seconds spent learning (excludes evaluation).
    pub wall_s: f64,
    /// Oracle queries spent.
    pub queries: u64,
    /// Mapped gate count of the produced circuit.
    pub gates: usize,
    /// Accuracy percentage (0–100) on the contest evaluation mix.
    pub accuracy: f64,
    /// Histogram summaries recorded during the run, keyed by the
    /// telemetry histogram name (see `cirlearn_telemetry::histograms`).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-stage cost attribution (queries, oracle time, gates built),
    /// keyed by top-level stage name. Empty for version-1 documents.
    pub attribution: BTreeMap<String, StageCost>,
    /// Whether the run stopped on the scale's wall-clock budget rather
    /// than finishing naturally. Budget-limited cases (quick scale:
    /// case_9, case_14) stop the FBDT at a machine-speed-dependent
    /// node, so their query/gate counts drift far beyond the default
    /// noise floors — [`compare`] widens the floors to
    /// [`CompareConfig::budget_min_queries`] /
    /// [`CompareConfig::budget_min_gates`] when either side is tagged.
    /// Absent in older documents (parses as `false`).
    pub budget_limited: bool,
}

impl BenchRecord {
    /// Serializes the record into its schema JSON object.
    pub fn to_json(&self) -> Json {
        let mut json = Json::object([
            ("name", Json::Str(self.name.clone())),
            ("contestant", Json::Str(self.contestant.clone())),
            ("wall_s", Json::Number(self.wall_s)),
            ("queries", Json::Number(self.queries as f64)),
            ("gates", Json::Number(self.gates as f64)),
            ("accuracy", Json::Number(self.accuracy)),
            (
                "histograms",
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_json()))
                        .collect(),
                ),
            ),
            (
                "attribution",
                Json::Object(
                    self.attribution
                        .iter()
                        .map(|(stage, c)| (stage.clone(), c.to_json()))
                        .collect(),
                ),
            ),
        ]);
        // Additive tag: emitted only when set, so untagged documents
        // stay byte-identical to the pre-tag schema.
        if self.budget_limited {
            if let Json::Object(pairs) = &mut json {
                pairs.push(("budget_limited".to_owned(), Json::Bool(true)));
            }
        }
        json
    }

    /// Parses a record from its schema JSON object.
    pub fn from_json(json: &Json) -> Result<BenchRecord, String> {
        let str_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("record is missing string field {key:?}"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record is missing numeric field {key:?}"))
        };
        let mut histograms = BTreeMap::new();
        match json.get("histograms") {
            None | Some(Json::Null) => {}
            Some(h) => {
                let pairs = h
                    .as_object()
                    .ok_or_else(|| "histograms must be an object".to_owned())?;
                for (name, value) in pairs {
                    histograms.insert(
                        name.clone(),
                        HistogramSummary::from_json(value)
                            .map_err(|e| format!("histogram {name:?}: {e}"))?,
                    );
                }
            }
        }
        let mut attribution = BTreeMap::new();
        match json.get("attribution") {
            None | Some(Json::Null) => {}
            Some(a) => {
                let pairs = a
                    .as_object()
                    .ok_or_else(|| "attribution must be an object".to_owned())?;
                for (stage, value) in pairs {
                    attribution.insert(stage.clone(), StageCost::from_json(value));
                }
            }
        }
        Ok(BenchRecord {
            name: str_field("name")?,
            contestant: str_field("contestant")?,
            wall_s: num_field("wall_s")?,
            queries: num_field("queries")? as u64,
            gates: num_field("gates")? as usize,
            accuracy: num_field("accuracy")?,
            histograms,
            attribution,
            budget_limited: json
                .get("budget_limited")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

/// A full harness run: suite + scale identification and one record per
/// benchmark executed.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Which suite produced the report (`table2` or `ablation`).
    pub suite: String,
    /// Effort scale the suite ran at (`smoke`, `quick` or `full`).
    pub scale: String,
    /// Per-benchmark results, in execution order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Serializes the report into its schema JSON document.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "bench_schema_version",
                Json::Number(BENCH_SCHEMA_VERSION as f64),
            ),
            ("suite", Json::Str(self.suite.clone())),
            ("scale", Json::Str(self.scale.clone())),
            (
                "records",
                Json::Array(self.records.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
    }

    /// Parses and validates a report from its schema JSON document.
    ///
    /// Rejects documents with a different `bench_schema_version`;
    /// unknown additional keys are ignored.
    pub fn from_json(json: &Json) -> Result<BenchReport, String> {
        let version = json
            .get("bench_schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing bench_schema_version")?;
        if !BENCH_COMPAT_VERSIONS.contains(&version) {
            return Err(format!(
                "bench_schema_version {version} is not one of the supported {BENCH_COMPAT_VERSIONS:?}"
            ));
        }
        let suite = json
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("missing suite")?
            .to_owned();
        let scale = json
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("missing scale")?
            .to_owned();
        let records = json
            .get("records")
            .and_then(Json::as_array)
            .ok_or("missing records array")?
            .iter()
            .enumerate()
            .map(|(i, r)| BenchRecord::from_json(r).map_err(|e| format!("records[{i}]: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            suite,
            scale,
            records,
        })
    }

    /// Parses a report from JSON text (convenience for file loading).
    pub fn from_text(text: &str) -> Result<BenchReport, String> {
        let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        BenchReport::from_json(&json)
    }

    /// Finds the record of one (name, contestant) pair.
    pub fn record(&self, name: &str, contestant: &str) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.name == name && r.contestant == contestant)
    }
}

/// Thresholds for [`compare`].
///
/// Cost metrics (wall time, queries, gates) regress when the new value
/// exceeds the old by more than `pct_threshold` percent *and* clears a
/// per-metric absolute noise floor, so sub-noise jitter on trivially
/// cheap benchmarks does not trip the gate. Accuracy regresses on an
/// absolute drop of more than `accuracy_drop` percentage points.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Relative increase (percent) tolerated on wall time, queries and
    /// gates before flagging a regression.
    pub pct_threshold: f64,
    /// Absolute accuracy drop (percentage points) tolerated.
    pub accuracy_drop: f64,
    /// Wall-time noise floor: increases below this many seconds never
    /// regress, whatever the ratio.
    pub min_wall_s: f64,
    /// Query-count noise floor: increases below this many queries never
    /// regress. The learner is seeded — a back-to-back A/B of the same
    /// binary at quick scale reproduces 17/20 table2 cases bit-for-bit
    /// — but query counts drift wherever control flow consults the
    /// wall clock: on the two cases that run into the quick-scale time
    /// budget (case_9 and case_14, ~14–15 s wall) the FBDT stops at a
    /// machine-speed-dependent node, shifting tens to hundreds of
    /// thousands of queries in either direction. This floor absorbs
    /// sub-node jitter on cheap cases; budget-limited cases need the
    /// relative threshold (their drift is large but so are their
    /// totals — case_14's observed 556 k-query swing was 21 %, under
    /// the default 25 % gate).
    pub min_queries: f64,
    /// Gate-count noise floor: increases below this many mapped gates
    /// never regress. Covers small budget-timing drift (one extra
    /// forced leaf adds a handful of gates) without masking real size
    /// regressions. Budget-limited cases can still trip this gate
    /// legitimately rarely (case_9 once drifted +800 gates, +47 %);
    /// re-run before trusting a gate regression on a case whose wall
    /// time sits at the scale's budget.
    pub min_gates: f64,
    /// Query floor used in place of [`CompareConfig::min_queries`]
    /// when either record is tagged [`BenchRecord::budget_limited`].
    /// Sized from observed drift: case_14's largest same-binary A/B
    /// swing was 556 k queries, so the default floor sits above it.
    pub budget_min_queries: f64,
    /// Gate floor used in place of [`CompareConfig::min_gates`] when
    /// either record is tagged [`BenchRecord::budget_limited`].
    /// Case_9 once drifted +800 gates (+47 %), and a later same-binary
    /// A/B produced a 1 397-gate swing (1 674 → 3 071), purely from
    /// where the budget cut the FBDT; the default floor absorbs that
    /// class of jitter while still catching order-of-magnitude
    /// blowups.
    pub budget_min_gates: f64,
    /// Accuracy drop (percentage points) tolerated in place of
    /// [`CompareConfig::accuracy_drop`] when either record is tagged
    /// [`BenchRecord::budget_limited`]. Accuracy on budget-limited
    /// cases is not monotone in work done: same-binary A/B runs of
    /// case_9 landed at 77.9 / 77.2 / 75.9 % against a 79.5 %
    /// baseline (a 3.6-point spread with *more* queries on the lower
    /// scores). The default absorbs that band; a genuine collapse
    /// still trips it.
    pub budget_accuracy_drop: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            pct_threshold: 25.0,
            accuracy_drop: 0.5,
            min_wall_s: 0.25,
            min_queries: 200.0,
            min_gates: 8.0,
            budget_min_queries: 600_000.0,
            budget_min_gates: 2_000.0,
            budget_accuracy_drop: 5.0,
        }
    }
}

/// One regression found by [`compare`]: a metric of one benchmark got
/// meaningfully worse (or the benchmark disappeared entirely).
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Contestant the record belongs to.
    pub contestant: String,
    /// Which metric regressed (`wall_s`, `queries`, `gates`,
    /// `accuracy`, or `missing` when the record vanished).
    pub metric: String,
    /// Old (baseline) value.
    pub old: f64,
    /// New value.
    pub new: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.metric == "missing" {
            return write!(
                f,
                "{}/{}: benchmark missing from new report",
                self.name, self.contestant
            );
        }
        write!(
            f,
            "{}/{}: {} regressed {} -> {}",
            self.name, self.contestant, self.metric, self.old, self.new
        )?;
        if self.old > 0.0 {
            write!(f, " ({:+.1}%)", (self.new / self.old - 1.0) * 100.0)?;
        }
        Ok(())
    }
}

/// Diffs two reports and returns every regression of `new` relative to
/// `old` under `cfg`'s thresholds.
///
/// Comparison is keyed by (name, contestant); benchmarks present only
/// in `new` are improvements by definition and ignored, benchmarks
/// present only in `old` are reported as `missing` regressions.
pub fn compare(old: &BenchReport, new: &BenchReport, cfg: &CompareConfig) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for o in &old.records {
        let Some(n) = new.record(&o.name, &o.contestant) else {
            regressions.push(Regression {
                name: o.name.clone(),
                contestant: o.contestant.clone(),
                metric: "missing".to_owned(),
                old: 0.0,
                new: 0.0,
            });
            continue;
        };
        let factor = 1.0 + cfg.pct_threshold / 100.0;
        let mut worse = |metric: &str, old_v: f64, new_v: f64, floor: f64| {
            if new_v > old_v * factor && new_v - old_v > floor {
                regressions.push(Regression {
                    name: o.name.clone(),
                    contestant: o.contestant.clone(),
                    metric: metric.to_owned(),
                    old: old_v,
                    new: new_v,
                });
            }
        };
        // Budget-limited runs stop the FBDT at a machine-speed-
        // dependent node, so their query/gate drift dwarfs the normal
        // noise floors; the tag (on either side — a case can cross
        // the budget line between commits) selects the wider ones.
        let limited = o.budget_limited || n.budget_limited;
        let (q_floor, g_floor, acc_drop) = if limited {
            (
                cfg.budget_min_queries,
                cfg.budget_min_gates,
                cfg.budget_accuracy_drop,
            )
        } else {
            (cfg.min_queries, cfg.min_gates, cfg.accuracy_drop)
        };
        worse("wall_s", o.wall_s, n.wall_s, cfg.min_wall_s);
        // Integer metrics: the configured absolute floors keep one-off
        // timing drift on tiny benchmarks from tripping the
        // percentage gate (see the CompareConfig field docs).
        worse("queries", o.queries as f64, n.queries as f64, q_floor);
        worse("gates", o.gates as f64, n.gates as f64, g_floor);
        if o.accuracy - n.accuracy > acc_drop {
            regressions.push(Regression {
                name: o.name.clone(),
                contestant: o.contestant.clone(),
                metric: "accuracy".to_owned(),
                old: o.accuracy,
                new: n.accuracy,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(name: &str) -> BenchRecord {
        let mut histograms = BTreeMap::new();
        histograms.insert(
            cirlearn_telemetry::histograms::ORACLE_QUERY_NS.to_owned(),
            HistogramSummary {
                count: 1000,
                sum: 2_000_000,
                min: 800,
                max: 30_000,
                p50: 1_792,
                p90: 3_584,
                p99: 28_672,
            },
        );
        let mut attribution = BTreeMap::new();
        attribution.insert(
            "support".to_owned(),
            StageCost {
                queries: 9_600,
                query_ns: 1_600_000,
                gates: 0,
            },
        );
        attribution.insert(
            "fbdt".to_owned(),
            StageCost {
                queries: 400,
                query_ns: 400_000,
                gates: 280,
            },
        );
        BenchRecord {
            name: name.to_owned(),
            contestant: "ours".to_owned(),
            wall_s: 2.0,
            queries: 10_000,
            gates: 300,
            accuracy: 99.9,
            histograms,
            attribution,
            budget_limited: false,
        }
    }

    fn sample_report() -> BenchReport {
        BenchReport {
            suite: "table2".to_owned(),
            scale: "quick".to_owned(),
            records: vec![sample_record("case_a"), sample_record("case_b")],
        }
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let report = sample_report();
        let text = report.to_json().to_pretty();
        let back = BenchReport::from_text(&text).expect("round trip parses");
        assert_eq!(back, report);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "bench_schema_version" {
                    *v = Json::Number(999.0);
                }
            }
        }
        let err = BenchReport::from_json(&json).expect_err("must reject");
        assert!(err.contains("999"), "unexpected error: {err}");
    }

    #[test]
    fn self_compare_is_clean() {
        let report = sample_report();
        let regressions = compare(&report, &report, &CompareConfig::default());
        assert!(regressions.is_empty(), "self-compare found {regressions:?}");
    }

    #[test]
    fn injected_twofold_slowdown_is_flagged() {
        let old = sample_report();
        let mut new = sample_report();
        new.records[0].wall_s *= 2.0;
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert_eq!(regressions.len(), 1, "got {regressions:?}");
        assert_eq!(regressions[0].metric, "wall_s");
        assert_eq!(regressions[0].name, "case_a");
    }

    #[test]
    fn slowdown_under_the_noise_floor_is_ignored() {
        let mut old = sample_report();
        let mut new = sample_report();
        // 3x slower, but only by 100ms — below the 250ms floor.
        old.records[0].wall_s = 0.05;
        new.records[0].wall_s = 0.15;
        old.records[1].wall_s = 0.05;
        new.records[1].wall_s = 0.15;
        let regressions = compare(&old, &new, &CompareConfig::default());
        assert!(regressions.is_empty(), "got {regressions:?}");
    }

    #[test]
    fn accuracy_drop_and_missing_benchmark_are_flagged() {
        let old = sample_report();
        let mut new = sample_report();
        new.records[0].accuracy -= 5.0;
        new.records.remove(1);
        let regressions = compare(&old, &new, &CompareConfig::default());
        let metrics: Vec<&str> = regressions.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(metrics, ["accuracy", "missing"], "got {regressions:?}");
    }

    #[test]
    fn query_and_gate_growth_is_flagged_beyond_the_floor() {
        let old = sample_report();
        let mut new = sample_report();
        new.records[0].queries = 20_000;
        new.records[1].gates = 600;
        let regressions = compare(&old, &new, &CompareConfig::default());
        let metrics: Vec<&str> = regressions.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(metrics, ["queries", "gates"], "got {regressions:?}");
    }

    #[test]
    fn version_1_documents_still_parse_without_attribution() {
        let mut json = sample_report().to_json();
        if let Json::Object(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "bench_schema_version" {
                    *v = Json::Number(1.0);
                }
            }
        }
        // Strip the v2 section to mimic a genuine v1 file.
        let text = json.to_pretty();
        let report = BenchReport::from_text(&text).expect("v1 must stay readable");
        assert_eq!(report.records.len(), 2);
    }

    #[test]
    fn attribution_round_trips_and_sums_to_queries() {
        let record = sample_record("case_a");
        let total: u64 = record.attribution.values().map(|c| c.queries).sum();
        assert_eq!(total, record.queries);
        let back = BenchRecord::from_json(&record.to_json()).expect("parses");
        assert_eq!(back.attribution, record.attribution);
    }

    #[test]
    fn noise_floors_are_configurable() {
        let old = sample_report();
        let mut new = sample_report();
        // +150 queries clears a 1% threshold but not the 200 floor…
        new.records[0].queries = old.records[0].queries + 150;
        let strict_pct = CompareConfig {
            pct_threshold: 1.0,
            ..CompareConfig::default()
        };
        assert!(compare(&old, &new, &strict_pct)
            .iter()
            .all(|r| r.metric != "queries"));
        // …and flags once the floor is tightened below the delta.
        let tight = CompareConfig {
            min_queries: 100.0,
            ..strict_pct
        };
        let regressions = compare(&old, &new, &tight);
        assert!(
            regressions.iter().any(|r| r.metric == "queries"),
            "got {regressions:?}"
        );
    }

    #[test]
    fn budget_limited_tag_round_trips_and_defaults_to_false() {
        let mut record = sample_record("case_9");
        record.budget_limited = true;
        let text = record.to_json().to_pretty();
        assert!(text.contains("\"budget_limited\": true"));
        let back = BenchRecord::from_json(&Json::parse(&text).unwrap()).expect("parses");
        assert!(back.budget_limited);
        // Untagged records omit the key entirely and parse as false.
        let plain = sample_record("case_a");
        let text = plain.to_json().to_pretty();
        assert!(!text.contains("budget_limited"));
        let back = BenchRecord::from_json(&Json::parse(&text).unwrap()).expect("parses");
        assert!(!back.budget_limited);
    }

    #[test]
    fn budget_limited_records_get_the_wider_noise_floors() {
        let mut old = sample_report();
        let mut new = sample_report();
        // Realistic budget-limited magnitudes: the drift clears the
        // percentage gate and the default floors, but stays under the
        // budget floors.
        old.records[0].queries = 2_600_000;
        new.records[0].queries = 3_156_000; // +556k, +21% — case_14's observed swing
        old.records[0].gates = 1_700;
        new.records[0].gates = 3_100; // +1400, +82% — case_9's observed A/B swing
        old.records[0].accuracy = 79.5;
        new.records[0].accuracy = 75.9; // −3.6 points — case_9's observed swing
        let cfg = CompareConfig {
            pct_threshold: 15.0,
            ..CompareConfig::default()
        };
        // Untagged, the same drift is a regression on both metrics…
        let metrics: Vec<String> = compare(&old, &new, &cfg)
            .into_iter()
            .map(|r| r.metric)
            .collect();
        assert_eq!(
            metrics,
            ["queries", "gates", "accuracy"],
            "untagged drift must trip"
        );
        // …and the tag (on either side) absorbs it.
        old.records[0].budget_limited = true;
        assert!(compare(&old, &new, &cfg).is_empty(), "old-side tag");
        old.records[0].budget_limited = false;
        new.records[0].budget_limited = true;
        assert!(compare(&old, &new, &cfg).is_empty(), "new-side tag");
        // The widened floor is still a floor, not a blank check.
        new.records[0].queries = 30_000_000;
        let metrics: Vec<String> = compare(&old, &new, &cfg)
            .into_iter()
            .map(|r| r.metric)
            .collect();
        assert_eq!(
            metrics,
            ["queries"],
            "order-of-magnitude blowups still trip"
        );
        // A genuine accuracy collapse also trips through the widened
        // tolerance.
        new.records[0].queries = 3_156_000;
        new.records[0].accuracy = 40.0;
        let metrics: Vec<String> = compare(&old, &new, &cfg)
            .into_iter()
            .map(|r| r.metric)
            .collect();
        assert_eq!(metrics, ["accuracy"], "collapses still trip when tagged");
    }

    #[test]
    fn tolerates_missing_histograms_section() {
        let mut json = sample_record("case_a").to_json();
        if let Json::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "histograms");
        }
        let record = BenchRecord::from_json(&json).expect("parses without histograms");
        assert!(record.histograms.is_empty());
    }
}
