//! Ablations of the paper's individual design choices (§IV):
//!
//! 1. **Levelized vs depth-first tree exploration** — the paper claims
//!    even exploration is more beneficial under early stopping; we pit
//!    both against the same query budget on a hard cone and compare
//!    accuracy.
//! 2. **Onset/offset selection** — collecting the sparser polarity
//!    should shrink covers of 1-heavy functions.
//! 3. **Uneven-ratio sampling** — mixing biased 0/1 ratios should find
//!    larger supports `S'` on skew-sensitive outputs (the paper's
//!    claim in §IV-C).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cirlearn-bench --bin design_ablations [--report <path>]
//! ```
//!
//! `--report <path>` writes one JSON document with a telemetry run
//! report per configuration (meta holds the ablation name, the toggled
//! knob and the measured outcome; the body carries the usual counter /
//! histogram breakdown of the underlying FBDT build), so the
//! machine-readable summary shares its source with the text output.

use cirlearn::fbdt::{build_fbdt, Exploration, FbdtConfig};
use cirlearn::sampling::{seeded_rng, SamplingConfig};
use cirlearn::support::identify_support;
use cirlearn::Budget;
use cirlearn_aig::Aig;
use cirlearn_oracle::{evaluate_accuracy, generate, CircuitOracle, EvalConfig, Oracle};
use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{Telemetry, SCHEMA_VERSION};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report_path = args
        .iter()
        .position(|a| a == "--report")
        .map(|i| match args.get(i + 1) {
            Some(path) => path.clone(),
            None => {
                eprintln!("error: --report requires a path");
                std::process::exit(2);
            }
        });
    let mut runs: Vec<Json> = Vec::new();
    ablation_exploration(&mut runs);
    ablation_onset_offset(&mut runs);
    ablation_uneven_ratios(&mut runs);

    if let Some(path) = report_path {
        let count = runs.len();
        let doc = Json::object([
            ("schema_version", Json::Number(SCHEMA_VERSION as f64)),
            ("command", Json::Str("design_ablations".to_owned())),
            ("runs", Json::Array(runs)),
        ]);
        if let Err(err) = cirlearn_telemetry::persist::write_atomic(&path, doc.to_pretty()) {
            eprintln!("error: cannot write report to {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote {count} run report(s) to {path}");
    }
}

/// 1. Levelized vs depth-first under an equal query budget.
fn ablation_exploration(runs: &mut Vec<Json>) {
    println!("== exploration order (paper: levelized wins under early stopping) ==");
    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "case", "levelized %", "depth-1st %", "budget"
    );
    for (support, seed) in [(20usize, 31u64), (24, 32), (28, 33)] {
        let budget_queries = 150_000u64;
        let mut run = |exploration: Exploration| {
            let telemetry = Telemetry::recording();
            telemetry.set_meta("ablation", "exploration");
            telemetry.set_meta("case", format!("neq support={support}"));
            telemetry.set_meta("exploration", format!("{exploration:?}"));
            telemetry.set_meta("budget_queries", budget_queries);
            let mut oracle = generate::neq_case_with_support(40, 1, support, seed);
            let mut rng = seeded_rng(1);
            let info = identify_support(&mut oracle, 0, &SamplingConfig::fast(), &mut rng);
            let cfg = FbdtConfig {
                exploration,
                max_queries: Some(budget_queries),
                ..FbdtConfig::fast()
            };
            let (cover, _) = build_fbdt(
                &mut oracle,
                0,
                &info.support,
                info.truth_ratio,
                &cfg,
                &Budget::unlimited(),
                &mut rng,
                &telemetry,
            );
            // Build and score the cover.
            let mut circuit = Aig::new();
            for name in oracle.input_names() {
                circuit.add_input(name.clone());
            }
            let var_map: Vec<_> = (0..circuit.num_inputs())
                .map(|p| circuit.input_edge(p))
                .collect();
            let edge = circuit
                .add_sop(&cover.sop, &var_map)
                .complement_if(cover.complemented);
            circuit.add_output(edge, "y");
            let acc = evaluate_accuracy(
                oracle.reveal(),
                &circuit,
                &EvalConfig {
                    patterns_per_group: 10_000,
                    ..EvalConfig::default()
                },
            );
            telemetry.set_meta("accuracy_pct", format!("{:.3}", acc.percent()));
            runs.push(telemetry.report().to_json());
            acc.percent()
        };
        let lev = run(Exploration::Levelized);
        let dfs = run(Exploration::DepthFirst);
        println!(
            "{:<28} {:>12.3} {:>12.3} {:>10}",
            format!("neq support={support}"),
            lev,
            dfs,
            budget_queries
        );
    }
    println!();
}

/// 2. Onset/offset selection on a 1-heavy function.
fn ablation_onset_offset(runs: &mut Vec<Json>) {
    println!("== onset/offset selection (paper §IV-D trick 2) ==");
    // A dense function: OR of 8 literals (truth ratio ~ 99.6%) — the
    // offset is a single cube while the onset needs hundreds.
    let mut g = Aig::new();
    let inputs = g.add_inputs("x", 16);
    let y = g.or_many(&inputs[..8]);
    g.add_output(y, "y");
    let mut oracle = CircuitOracle::new(g);

    let mut run = |selection: bool| {
        let telemetry = Telemetry::recording();
        telemetry.set_meta("ablation", "onset_offset");
        telemetry.set_meta("case", "or8 of 16");
        telemetry.set_meta("onset_offset_selection", selection);
        let mut rng = seeded_rng(2);
        let info = identify_support(&mut oracle, 0, &SamplingConfig::fast(), &mut rng);
        let cfg = FbdtConfig {
            onset_offset_selection: selection,
            ..FbdtConfig::fast()
        };
        let (cover, stats) = build_fbdt(
            &mut oracle,
            0,
            &info.support,
            info.truth_ratio,
            &cfg,
            &Budget::unlimited(),
            &mut rng,
            &telemetry,
        );
        telemetry.set_meta("cubes", cover.sop.cubes().len());
        telemetry.set_meta("complemented", cover.complemented);
        runs.push(telemetry.report().to_json());
        (cover.sop.cubes().len(), cover.complemented, stats.queries)
    };
    let (with_cubes, with_compl, _) = run(true);
    let (without_cubes, without_compl, _) = run(false);
    println!("selection on : {with_cubes} cubes (complemented: {with_compl})");
    println!("selection off: {without_cubes} cubes (complemented: {without_compl})");
    println!();
}

/// 3. Even-only vs mixed-ratio sampling for support identification.
fn ablation_uneven_ratios(runs: &mut Vec<Json>) {
    println!("== uneven-ratio sampling (paper §IV-C) ==");
    // y = AND of 14 inputs: a uniform flip changes the output only when
    // the other 13 are all 1 (p = 2^-13); biased patterns see it.
    let mut g = Aig::new();
    let inputs = g.add_inputs("x", 14);
    let y = g.and_many(&inputs);
    g.add_output(y, "y");
    let mut oracle = CircuitOracle::new(g);

    for (label, ratios) in [
        ("uniform only", vec![0.5]),
        ("mixed ratios", vec![0.5, 0.25, 0.75, 0.1, 0.9]),
    ] {
        let telemetry = Telemetry::recording();
        telemetry.set_meta("ablation", "uneven_ratios");
        telemetry.set_meta("case", "and14");
        telemetry.set_meta("ratios", label);
        let cfg = SamplingConfig {
            rounds: 600,
            ratios,
        };
        let mut rng = seeded_rng(3);
        let info = identify_support(&mut oracle, 0, &cfg, &mut rng);
        telemetry.set_meta("support_found", info.support.len());
        runs.push(telemetry.report().to_json());
        println!(
            "{label:<14}: |S'| = {:>2} of 14 actual support inputs",
            info.support.len()
        );
    }
}
