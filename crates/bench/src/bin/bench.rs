//! Regression-gated benchmark harness.
//!
//! Runs the table2 / ablation suites and writes schema-versioned
//! `BENCH_table2.json` / `BENCH_ablation.json` documents that carry,
//! per benchmark, the contest metrics (size / accuracy / time /
//! queries) and the telemetry layer's latency-histogram summaries
//! (oracle query latency, per-node FBDT cost, per-pass synthesis
//! cost). A separate `compare` mode diffs two such documents and
//! exits nonzero on regressions, so the harness slots directly into
//! CI as a performance gate.
//!
//! Usage:
//!
//! ```text
//! bench run [--suite table2|ablation|all] [--smoke|--full]
//!           [--out DIR] [case ...]
//! bench compare <old.json> <new.json> [--threshold PCT]
//! bench validate <file.json> ...
//! ```
//!
//! `run` defaults to the quick scale over both suites; `--smoke`
//! shrinks budgets and restricts each suite to its smallest cases
//! (seconds of wall time, the CI mode), `--full` uses paper-faithful
//! budgets. Positional case names restrict the table2 suite.
//!
//! `compare` prints each regression (`wall_s` / `queries` / `gates`
//! beyond the threshold, absolute `accuracy` drops, or a benchmark
//! missing from the new file) and exits 1 when any exist.
//!
//! `validate` parses each file against the BENCH schema and exits
//! nonzero on the first invalid one.

use std::process::ExitCode;

use std::collections::BTreeMap;

use cirlearn::LearnerConfig;
use cirlearn_bench::report::{compare, BenchRecord, BenchReport, CompareConfig, StageCost};
use cirlearn_bench::{run_learner_case, Scale};
use cirlearn_oracle::{contest_suite, Category, ContestCase};
use cirlearn_telemetry::Telemetry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some(other) => Err(format!("unknown subcommand {other}")),
        None => Err("missing subcommand".to_owned()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  bench run [--suite table2|ablation|all] [--smoke|--full] [--out DIR] [case ...]
  bench compare <old.json> <new.json> [--threshold PCT]
  bench validate <file.json> ...";

/// Runs one learner configuration on one case and converts the row +
/// telemetry histograms into a [`BenchRecord`].
fn bench_record(
    case: &ContestCase,
    name: String,
    cfg: LearnerConfig,
    scale: &Scale,
) -> BenchRecord {
    // A fresh silent telemetry per benchmark keeps the histograms
    // scoped to a single run.
    let telemetry = Telemetry::recording();
    let row = run_learner_case(case, cfg, scale, &telemetry);
    let report = telemetry.report();
    let histograms = report.histograms;
    // Collapse the per-(stage, output) ledger to per-stage totals —
    // BENCH files track stage-level drift across commits; per-output
    // detail lives in `--report` / trace files.
    let mut attribution: BTreeMap<String, StageCost> = BTreeMap::new();
    for a in &report.attribution {
        let cell = attribution.entry(a.stage.clone()).or_default();
        cell.queries += a.queries;
        cell.query_ns += a.query_ns;
        cell.gates += a.gates;
    }
    eprintln!(
        "  {name}: size={} accuracy={:.3}% time={:.2}s queries={}",
        row.size, row.accuracy, row.seconds, row.queries
    );
    BenchRecord {
        name,
        contestant: "ours".to_owned(),
        wall_s: row.seconds,
        queries: row.queries,
        gates: row.size,
        accuracy: row.accuracy,
        histograms,
        attribution,
        budget_limited: row.budget_limited,
    }
}

/// The smallest cases of a suite slice, by input count — the smoke
/// subset.
fn smallest<'a>(cases: &[&'a ContestCase], n: usize) -> Vec<&'a ContestCase> {
    let mut sorted: Vec<_> = cases.to_vec();
    sorted.sort_by_key(|c| (c.num_inputs, c.name));
    sorted.truncate(n);
    sorted
}

fn run_table2(scale: &Scale, scale_name: &str, smoke: bool, wanted: &[String]) -> BenchReport {
    let suite = contest_suite();
    let mut cases: Vec<&ContestCase> = suite
        .iter()
        .filter(|c| wanted.is_empty() || wanted.iter().any(|w| w == c.name))
        .collect();
    if smoke && wanted.is_empty() {
        cases = smallest(&cases, 3);
    }
    eprintln!(
        "bench: table2 suite, {} case(s) at {scale_name} scale",
        cases.len()
    );
    let records = cases
        .iter()
        .map(|case| bench_record(case, case.name.to_owned(), LearnerConfig::fast(), scale))
        .collect();
    BenchReport {
        suite: "table2".to_owned(),
        scale: scale_name.to_owned(),
        records,
    }
}

fn run_ablation(scale: &Scale, scale_name: &str, smoke: bool) -> BenchReport {
    let suite = contest_suite();
    let mut cases: Vec<&ContestCase> = suite
        .iter()
        .filter(|c| matches!(c.category, Category::Diag | Category::Data))
        .collect();
    if smoke {
        cases = smallest(&cases, 2);
    }
    eprintln!(
        "bench: ablation suite, {} case(s) x 2 configs at {scale_name} scale",
        cases.len()
    );
    let mut records = Vec::new();
    for case in cases {
        records.push(bench_record(
            case,
            case.name.to_owned(),
            LearnerConfig::fast(),
            scale,
        ));
        let mut cfg = LearnerConfig::fast();
        cfg.preprocessing = false;
        records.push(bench_record(
            case,
            format!("{}/no-preproc", case.name),
            cfg,
            scale,
        ));
    }
    BenchReport {
        suite: "ablation".to_owned(),
        scale: scale_name.to_owned(),
        records,
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut suite = "all".to_owned();
    let mut smoke = false;
    let mut full = false;
    let mut out_dir = ".".to_owned();
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--full" => full = true,
            "--suite" | "--out" => {
                let flag = args[i].clone();
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| format!("{flag} expects a value"))?
                    .clone();
                if flag == "--suite" {
                    suite = value;
                } else {
                    out_dir = value;
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            case => wanted.push(case.to_owned()),
        }
        i += 1;
    }
    if smoke && full {
        return Err("--smoke and --full are mutually exclusive".to_owned());
    }
    let (scale, scale_name) = if smoke {
        (Scale::smoke(), "smoke")
    } else if full {
        (Scale::full(), "full")
    } else {
        (Scale::quick(), "quick")
    };
    if !matches!(suite.as_str(), "table2" | "ablation" | "all") {
        return Err(format!("--suite expects table2|ablation|all, got {suite}"));
    }

    let mut reports = Vec::new();
    if suite == "table2" || suite == "all" {
        reports.push(run_table2(&scale, scale_name, smoke, &wanted));
    }
    if suite == "ablation" || suite == "all" {
        reports.push(run_ablation(&scale, scale_name, smoke));
    }
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    for report in &reports {
        let path = format!("{out_dir}/BENCH_{}.json", report.suite);
        cirlearn_telemetry::persist::write_atomic(&path, report.to_json().to_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path} ({} record(s))", report.records.len());
    }
    Ok(ExitCode::SUCCESS)
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    BenchReport::from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = CompareConfig::default();
    let mut paths: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                let v = args.get(i).ok_or("--threshold expects a percentage")?;
                cfg.pct_threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold expects a number, got {v}"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => paths.push(path),
        }
        i += 1;
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("compare expects exactly two BENCH files".to_owned());
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    if old.suite != new.suite {
        eprintln!(
            "warning: comparing different suites ({} vs {})",
            old.suite, new.suite
        );
    }
    let regressions = compare(&old, &new, &cfg);
    if regressions.is_empty() {
        println!(
            "ok: no regressions across {} benchmark(s) (threshold {}%)",
            old.records.len(),
            cfg.pct_threshold
        );
        return Ok(ExitCode::SUCCESS);
    }
    for r in &regressions {
        println!("REGRESSION {r}");
    }
    println!(
        "{} regression(s) across {} benchmark(s) (threshold {}%)",
        regressions.len(),
        old.records.len(),
        cfg.pct_threshold
    );
    Ok(ExitCode::FAILURE)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("validate expects one or more BENCH files".to_owned());
    }
    for path in args {
        let report = load(path)?;
        let with_histograms = report
            .records
            .iter()
            .filter(|r| !r.histograms.is_empty())
            .count();
        println!(
            "{path}: valid (suite {}, scale {}, {} record(s), {} with histograms)",
            report.suite,
            report.scale,
            report.records.len(),
            with_histograms
        );
    }
    Ok(ExitCode::SUCCESS)
}
