//! Regenerates the paper's §V preprocessing ablation: learning the
//! DIAG and DATA cases with name grouping + template matching turned
//! off.
//!
//! The paper reports that without preprocessing six of the eight
//! DIAG/DATA cases stay above 99.7% accuracy (the FBDT is robust), two
//! drop to ~20%, and circuit size / runtime increase by 28× / 227× on
//! average. This binary prints the with/without comparison per case so
//! those three effects can be checked.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cirlearn-bench --bin ablation \
//!     [--full] [--verbose] [--report <path>]
//! ```
//!
//! `--verbose` narrates each run through the telemetry reporter and
//! prints a per-stage wall-clock / oracle-query breakdown, which makes
//! the "time increases without preprocessing" effect attributable to a
//! concrete stage (FBDT construction) instead of a single total.
//! `--report <path>` writes every run's telemetry report (meta
//! including the preprocessing toggle and measured metrics, per-stage
//! spans, counters, histograms) into one JSON document, so the
//! machine-readable summary comes from the same source as the text
//! table and the two cannot drift.

use std::time::{Duration, Instant};

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{contest_suite, evaluate_accuracy, EvalConfig};
use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{Level, Reporter, StderrReporter, Telemetry, SCHEMA_VERSION};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let verbose = args.iter().any(|a| a == "--verbose");
    let report_path = args
        .iter()
        .position(|a| a == "--report")
        .map(|i| match args.get(i + 1) {
            Some(path) => path.clone(),
            None => {
                eprintln!("error: --report requires a path");
                std::process::exit(2);
            }
        });
    let level = if verbose { Level::Debug } else { Level::Warn };
    let mut reporter = StderrReporter::new(level);
    let (budget, eval_patterns) = if full {
        (Duration::from_secs(300), 500_000)
    } else {
        (Duration::from_secs(15), 20_000)
    };

    let suite = contest_suite();
    let targets: Vec<_> = suite
        .iter()
        .filter(|c| {
            matches!(
                c.category,
                cirlearn_oracle::Category::Diag | cirlearn_oracle::Category::Data
            )
        })
        .collect();

    println!(
        "{:<9} {:<5} | {:>10} {:>8} {:>8} | {:>10} {:>8} {:>8} | {:>7} {:>7}",
        "case", "type", "size+", "acc%+", "time+", "size-", "acc%-", "time-", "size x", "time x"
    );

    let mut size_ratios = Vec::new();
    let mut time_ratios = Vec::new();
    let mut runs: Vec<Json> = Vec::new();
    for case in targets {
        let mut run = |preprocessing: bool| {
            reporter.event(
                Level::Debug,
                "ablation",
                &format!(
                    "{} with preprocessing {} ...",
                    case.name,
                    if preprocessing { "on" } else { "off" }
                ),
            );
            let mut oracle = case.build();
            let mut cfg = LearnerConfig::fast();
            cfg.preprocessing = preprocessing;
            cfg.time_budget = budget;
            let telemetry = Telemetry::new(Box::new(StderrReporter::new(level)));
            telemetry.set_meta("case", case.name);
            telemetry.set_meta("category", case.category);
            telemetry.set_meta("preprocessing", preprocessing);
            let start = Instant::now();
            let result = Learner::with_telemetry(cfg, telemetry.clone()).learn(&mut oracle);
            let secs = start.elapsed().as_secs_f64();
            let acc = evaluate_accuracy(
                oracle.reveal(),
                &result.circuit,
                &EvalConfig {
                    patterns_per_group: eval_patterns,
                    ..EvalConfig::default()
                },
            );
            let size = cirlearn_synth::map::map_gates(&result.circuit).gate_count();
            telemetry.set_meta("size", size);
            telemetry.set_meta("accuracy_pct", format!("{:.3}", acc.percent()));
            telemetry.set_meta("seconds", format!("{secs:.3}"));
            let report = telemetry.report();
            if verbose {
                eprint!("{}", report.stage_breakdown());
            }
            if report_path.is_some() {
                runs.push(report.to_json());
            }
            (size, acc.percent(), secs)
        };
        let (s_on, a_on, t_on) = run(true);
        let (s_off, a_off, t_off) = run(false);
        let size_x = s_off as f64 / s_on.max(1) as f64;
        let time_x = t_off / t_on.max(1e-3);
        size_ratios.push(size_x);
        time_ratios.push(time_x);
        println!(
            "{:<9} {:<5} | {:>10} {:>8.3} {:>8.1} | {:>10} {:>8.3} {:>8.1} | {:>7.1} {:>7.1}",
            case.name, case.category, s_on, a_on, t_on, s_off, a_off, t_off, size_x, time_x
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\naverage increase without preprocessing: size {:.1}x, time {:.1}x (paper: 28x, 227x)",
        avg(&size_ratios),
        avg(&time_ratios)
    );

    if let Some(path) = report_path {
        let count = runs.len();
        let doc = Json::object([
            ("schema_version", Json::Number(SCHEMA_VERSION as f64)),
            ("command", Json::Str("ablation".to_owned())),
            (
                "scale",
                Json::Str(if full { "full" } else { "quick" }.to_owned()),
            ),
            (
                "summary",
                Json::object([
                    ("avg_size_x", Json::Number(avg(&size_ratios))),
                    ("avg_time_x", Json::Number(avg(&time_ratios))),
                ]),
            ),
            ("runs", Json::Array(runs)),
        ]);
        if let Err(err) = cirlearn_telemetry::persist::write_atomic(&path, doc.to_pretty()) {
            eprintln!("error: cannot write report to {path}: {err}");
            std::process::exit(1);
        }
        reporter.event(
            Level::Info,
            "ablation",
            &format!("wrote {count} run report(s) to {path}"),
        );
    }
}
