//! Regenerates the paper's §V preprocessing ablation: learning the
//! DIAG and DATA cases with name grouping + template matching turned
//! off.
//!
//! The paper reports that without preprocessing six of the eight
//! DIAG/DATA cases stay above 99.7% accuracy (the FBDT is robust), two
//! drop to ~20%, and circuit size / runtime increase by 28× / 227× on
//! average. This binary prints the with/without comparison per case so
//! those three effects can be checked.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cirlearn-bench --bin ablation [--full] [--verbose]
//! ```
//!
//! `--verbose` narrates each run through the telemetry reporter and
//! prints a per-stage wall-clock / oracle-query breakdown, which makes
//! the "time increases without preprocessing" effect attributable to a
//! concrete stage (FBDT construction) instead of a single total.

use std::time::{Duration, Instant};

use cirlearn::{Learner, LearnerConfig};
use cirlearn_oracle::{contest_suite, evaluate_accuracy, EvalConfig};
use cirlearn_telemetry::{Level, Reporter, StderrReporter, Telemetry};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let verbose = std::env::args().any(|a| a == "--verbose");
    let level = if verbose { Level::Debug } else { Level::Warn };
    let mut reporter = StderrReporter::new(level);
    let (budget, eval_patterns) = if full {
        (Duration::from_secs(300), 500_000)
    } else {
        (Duration::from_secs(15), 20_000)
    };

    let suite = contest_suite();
    let targets: Vec<_> = suite
        .iter()
        .filter(|c| {
            matches!(
                c.category,
                cirlearn_oracle::Category::Diag | cirlearn_oracle::Category::Data
            )
        })
        .collect();

    println!(
        "{:<9} {:<5} | {:>10} {:>8} {:>8} | {:>10} {:>8} {:>8} | {:>7} {:>7}",
        "case", "type", "size+", "acc%+", "time+", "size-", "acc%-", "time-", "size x", "time x"
    );

    let mut size_ratios = Vec::new();
    let mut time_ratios = Vec::new();
    for case in targets {
        let mut run = |preprocessing: bool| {
            reporter.event(
                Level::Debug,
                "ablation",
                &format!(
                    "{} with preprocessing {} ...",
                    case.name,
                    if preprocessing { "on" } else { "off" }
                ),
            );
            let mut oracle = case.build();
            let mut cfg = LearnerConfig::fast();
            cfg.preprocessing = preprocessing;
            cfg.time_budget = budget;
            let telemetry = Telemetry::new(Box::new(StderrReporter::new(level)));
            let start = Instant::now();
            let result = Learner::with_telemetry(cfg, telemetry.clone()).learn(&mut oracle);
            let secs = start.elapsed().as_secs_f64();
            if verbose {
                eprint!("{}", telemetry.report().stage_breakdown());
            }
            let acc = evaluate_accuracy(
                oracle.reveal(),
                &result.circuit,
                &EvalConfig {
                    patterns_per_group: eval_patterns,
                    ..EvalConfig::default()
                },
            );
            (
                cirlearn_synth::map::map_gates(&result.circuit).gate_count(),
                acc.percent(),
                secs,
            )
        };
        let (s_on, a_on, t_on) = run(true);
        let (s_off, a_off, t_off) = run(false);
        let size_x = s_off as f64 / s_on.max(1) as f64;
        let time_x = t_off / t_on.max(1e-3);
        size_ratios.push(size_x);
        time_ratios.push(time_x);
        println!(
            "{:<9} {:<5} | {:>10} {:>8.3} {:>8.1} | {:>10} {:>8.3} {:>8.1} | {:>7.1} {:>7.1}",
            case.name, case.category, s_on, a_on, t_on, s_off, a_off, t_off, size_x, time_x
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\naverage increase without preprocessing: size {:.1}x, time {:.1}x (paper: 28x, 227x)",
        avg(&size_ratios),
        avg(&time_ratios)
    );
}
