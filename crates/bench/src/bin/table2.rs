//! Regenerates the paper's Table II: per-case size / accuracy / time
//! for our learner and the two second-place-style baselines over the
//! 20-case contest suite.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cirlearn-bench --bin table2 [--full] [--ours-only] [case ...]
//! ```
//!
//! The default (quick) scale uses reduced budgets and 3×20k evaluation
//! patterns; `--full` switches to the contest's 3×500k patterns and
//! generous budgets. Absolute numbers differ from the paper (synthetic
//! benchmarks, different machine); the comparison *shape* — who wins,
//! by what order of magnitude, which cases stay unsolved — is the
//! reproduction target (see EXPERIMENTS.md).

use cirlearn_bench::{print_table, run_case, Contestant, Scale};
use cirlearn_oracle::contest_suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let ours_only = args.iter().any(|a| a == "--ours-only");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let scale = if full { Scale::full() } else { Scale::quick() };
    let contestants: Vec<Contestant> = if ours_only {
        vec![Contestant::Ours]
    } else {
        vec![Contestant::Ours, Contestant::GreedyDt, Contestant::SampleSop]
    };

    let suite = contest_suite();
    let cases: Vec<_> = suite
        .iter()
        .filter(|c| wanted.is_empty() || wanted.iter().any(|w| *w == c.name))
        .collect();

    eprintln!(
        "running {} case(s) x {} contestant(s) at {} scale",
        cases.len(),
        contestants.len(),
        if full { "full" } else { "quick" }
    );

    let mut rows = Vec::new();
    for case in cases {
        for &c in &contestants {
            eprintln!("  {} / {c} ...", case.name);
            let row = run_case(case, c, &scale);
            eprintln!(
                "    size={} accuracy={:.3}% time={:.1}s queries={}",
                row.size, row.accuracy, row.seconds, row.queries
            );
            rows.push(row);
        }
    }
    println!();
    print_table(&rows, &contestants);
}
