//! Regenerates the paper's Table II: per-case size / accuracy / time
//! for our learner and the two second-place-style baselines over the
//! 20-case contest suite.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cirlearn-bench --bin table2 \
//!     [--full] [--ours-only] [--verbose] [--report <path>] [case ...]
//! ```
//!
//! The default (quick) scale uses reduced budgets and 3×20k evaluation
//! patterns; `--full` switches to the contest's 3×500k patterns and
//! generous budgets. `--verbose` raises the narration level to debug
//! and prints a per-stage wall-clock / oracle-query breakdown after
//! each of our learner's runs; `--report <path>` writes every run's
//! telemetry report into one JSON document for offline analysis.
//! Absolute numbers differ from the paper (synthetic benchmarks,
//! different machine); the comparison *shape* — who wins, by what
//! order of magnitude, which cases stay unsolved — is the reproduction
//! target (see EXPERIMENTS.md).

use cirlearn_bench::{print_table, run_case_with, Contestant, Scale};
use cirlearn_oracle::contest_suite;
use cirlearn_telemetry::json::Json;
use cirlearn_telemetry::{Level, Reporter, StderrReporter, Telemetry, SCHEMA_VERSION};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut ours_only = false;
    let mut verbose = false;
    let mut report_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--ours-only" => ours_only = true,
            "--verbose" => verbose = true,
            "--report" => {
                i += 1;
                match args.get(i) {
                    Some(path) => report_path = Some(path.clone()),
                    None => {
                        eprintln!("error: --report requires a path");
                        std::process::exit(2);
                    }
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                std::process::exit(2);
            }
            case => wanted.push(case.to_owned()),
        }
        i += 1;
    }

    let scale = if full { Scale::full() } else { Scale::quick() };
    let contestants: Vec<Contestant> = if ours_only {
        vec![Contestant::Ours]
    } else {
        vec![
            Contestant::Ours,
            Contestant::GreedyDt,
            Contestant::SampleSop,
        ]
    };

    let suite = contest_suite();
    let cases: Vec<_> = suite
        .iter()
        .filter(|c| wanted.is_empty() || wanted.iter().any(|w| w == c.name))
        .collect();

    let level = if verbose { Level::Debug } else { Level::Info };
    let mut reporter = StderrReporter::new(level);
    reporter.event(
        Level::Info,
        "table2",
        &format!(
            "running {} case(s) x {} contestant(s) at {} scale",
            cases.len(),
            contestants.len(),
            if full { "full" } else { "quick" }
        ),
    );

    let mut rows = Vec::new();
    let mut runs: Vec<Json> = Vec::new();
    for case in cases {
        for &c in &contestants {
            reporter.event(Level::Info, "table2", &format!("{} / {c} ...", case.name));
            let telemetry = Telemetry::new(Box::new(StderrReporter::new(level)));
            let row = run_case_with(case, c, &scale, &telemetry);
            reporter.event(
                Level::Info,
                "table2",
                &format!(
                    "size={} accuracy={:.3}% time={:.1}s queries={}",
                    row.size, row.accuracy, row.seconds, row.queries
                ),
            );
            let report = telemetry.report();
            if verbose && c == Contestant::Ours {
                eprint!("{}", report.stage_breakdown());
            }
            if report_path.is_some() {
                runs.push(report.to_json());
            }
            rows.push(row);
        }
    }
    println!();
    print_table(&rows, &contestants);

    if let Some(path) = report_path {
        let count = runs.len();
        let doc = Json::object([
            ("schema_version", Json::Number(SCHEMA_VERSION as f64)),
            ("command", Json::Str("table2".to_owned())),
            (
                "scale",
                Json::Str(if full { "full" } else { "quick" }.to_owned()),
            ),
            ("runs", Json::Array(runs)),
        ]);
        if let Err(err) = cirlearn_telemetry::persist::write_atomic(&path, doc.to_pretty()) {
            eprintln!("error: cannot write report to {path}: {err}");
            std::process::exit(1);
        }
        reporter.event(
            Level::Info,
            "table2",
            &format!("wrote {count} run report(s) to {path}"),
        );
    }
}
