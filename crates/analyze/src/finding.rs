//! Typed findings with node provenance and a unified severity scale.

use std::fmt;

use cirlearn_telemetry::json::Json;
use cirlearn_verify::LintViolation;

/// How serious a finding is. The order is total: `Info < Warning <
/// Error`, so a `--deny warning` gate trips on warnings *and* errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observational: metrics-style facts worth surfacing, not defects.
    Info,
    /// The circuit computes the right thing wastefully (dead nodes,
    /// duplicates, provable constants) — a missed optimization.
    Warning,
    /// The graph violates a structural invariant and is unsafe to
    /// simulate or encode.
    Error,
}

impl Severity {
    /// The lowercase name used in tables, JSON and `--deny` flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "info" => Ok(Severity::Info),
            "warn" | "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!(
                "unknown severity '{other}' (expected info|warning|error)"
            )),
        }
    }
}

/// What an analysis concluded, with the node/output it anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// Ternary propagation proved an AND node constant under all
    /// assignments of the unconstrained inputs.
    ConstantNode {
        /// The provably constant AND node.
        node: usize,
        /// The constant value it always evaluates to.
        value: bool,
    },
    /// Ternary propagation proved a primary output constant even though
    /// it is driven by gate logic (a literal constant edge is fine).
    ConstantOutput {
        /// The output position.
        output: usize,
        /// The constant value the output always takes.
        value: bool,
    },
    /// An AND node outside every output cone: it burns area (and
    /// candidate-gate budget in the learner) without affecting any
    /// output.
    DeadNode {
        /// The unreachable AND node.
        node: usize,
    },
    /// Two ANDs compute the same function via an identical ordered
    /// fanin pair — a structural-hashing miss.
    DuplicateNode {
        /// The later (redundant) AND node.
        node: usize,
        /// The earlier AND node with the identical fanin pair.
        first: usize,
    },
    /// A node drives an unusually large number of fanins — fine
    /// functionally, but a depth/congestion hotspot worth knowing about.
    HighFanout {
        /// The node with the large fanout.
        node: usize,
        /// How many fanin slots and outputs reference it.
        fanout: usize,
    },
    /// A structural lint violation from `cirlearn-verify`, folded into
    /// the unified severity scale.
    Lint(LintViolation),
}

/// One analysis conclusion: which analysis produced it, how serious it
/// is, and what it says.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Short name of the producing analysis (`ternary`, `dead`, `dup`,
    /// `metrics`, `lint`).
    pub analysis: &'static str,
    /// Where the finding sits on the unified severity scale.
    pub severity: Severity,
    /// The typed conclusion.
    pub kind: FindingKind,
}

impl Finding {
    /// The node id the finding anchors to, if it anchors to a node
    /// (constant-output findings anchor to an output position instead).
    pub fn node(&self) -> Option<usize> {
        match &self.kind {
            FindingKind::ConstantNode { node, .. }
            | FindingKind::DeadNode { node }
            | FindingKind::DuplicateNode { node, .. }
            | FindingKind::HighFanout { node, .. } => Some(*node),
            FindingKind::ConstantOutput { .. } => None,
            FindingKind::Lint(v) => Some(v.node()),
        }
    }

    /// Serializes to the `--report` JSON form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("analysis", Json::from(self.analysis)),
            ("severity", Json::from(self.severity.as_str())),
            ("message", Json::from(self.to_string().as_str())),
        ];
        if let Some(node) = self.node() {
            fields.push(("node", Json::from(node as u64)));
        }
        if let FindingKind::ConstantOutput { output, .. } = self.kind {
            fields.push(("output", Json::from(output as u64)));
        }
        Json::object(fields)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FindingKind::ConstantNode { node, value } => {
                write!(f, "node {node}: provably constant {}", *value as u8)
            }
            FindingKind::ConstantOutput { output, value } => {
                write!(
                    f,
                    "output {output}: gate logic provably constant {}",
                    *value as u8
                )
            }
            FindingKind::DeadNode { node } => {
                write!(f, "node {node}: unreachable from every output")
            }
            FindingKind::DuplicateNode { node, first } => {
                write!(f, "node {node}: duplicates node {first} (same fanin pair)")
            }
            FindingKind::HighFanout { node, fanout } => {
                write!(f, "node {node}: fanout {fanout} exceeds the threshold")
            }
            FindingKind::Lint(v) => write!(f, "{v}"),
        }
    }
}

impl From<LintViolation> for Finding {
    fn from(v: LintViolation) -> Self {
        // Structural violations make the graph unsafe to simulate or
        // encode; everything else the linter reports is wasted area.
        let severity = if v.is_structural() {
            Severity::Error
        } else {
            Severity::Warning
        };
        Finding {
            analysis: "lint",
            severity,
            kind: FindingKind::Lint(v),
        }
    }
}
