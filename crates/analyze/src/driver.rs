//! The lint driver: runs every analysis, unifies findings behind one
//! severity scale, and renders reports.

use std::fmt::Write as _;

use cirlearn_aig::Aig;
use cirlearn_telemetry::json::Json;
use cirlearn_verify::{LintViolation, Linter};

use crate::dead::{dead_count, find_dead};
use crate::dup::{duplicate_count, find_duplicates};
use crate::finding::{Finding, FindingKind, Severity};
use crate::metrics::{find_high_fanout, metrics, AigMetrics};
use crate::ternary::find_ternary_constants;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Fold the structural linter's violations into the findings
    /// (default true).
    pub include_lint: bool,
    /// Emit an Info finding for nodes with at least this many fanout
    /// references; 0 disables the check (default 64).
    pub fanout_threshold: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            include_lint: true,
            fanout_threshold: 64,
        }
    }
}

/// Runs the full analysis suite over AIGs.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalyzeConfig,
}

impl Analyzer {
    /// An analyzer with default configuration.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Replaces the configuration.
    pub fn with_config(config: AnalyzeConfig) -> Self {
        Analyzer { config }
    }

    /// Analyzes one graph: lint first, then — if the graph is
    /// structurally safe to traverse — the dataflow analyses and
    /// metrics. Findings are ordered most-severe-first, then by node.
    pub fn analyze(&self, aig: &Aig) -> AnalyzeReport {
        let mut findings: Vec<Finding> = Vec::new();

        // Dangling ANDs and duplicate pairs are owned by the dedicated
        // analyses (richer provenance: the dead analysis reports the
        // whole stranded cone, the dup analysis normalizes mirrored
        // pairs), so the lint pass contributes everything else.
        let violations = Linter::new().allow_dangling(true).lint(aig);
        let structurally_safe = violations.iter().all(|v| !v.is_structural());
        if self.config.include_lint {
            findings.extend(
                violations
                    .into_iter()
                    .filter(|v| !matches!(v, LintViolation::DuplicateFaninPair { .. }))
                    .map(Finding::from),
            );
        }

        // The semantic analyses assume fanins are in range and
        // topologically ordered; on a structurally broken graph the
        // lint errors above are the only trustworthy output.
        let metrics = if structurally_safe {
            findings.extend(find_dead(aig));
            findings.extend(find_duplicates(aig));
            findings.extend(find_ternary_constants(aig));
            findings.extend(find_high_fanout(aig, self.config.fanout_threshold));
            Some(metrics(aig))
        } else {
            None
        };

        findings.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.node().cmp(&b.node()))
        });
        AnalyzeReport { findings, metrics }
    }
}

/// The outcome of analyzing one graph.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
    /// Structural snapshot; `None` when the graph was too broken to
    /// traverse (structural lint errors present).
    pub metrics: Option<AigMetrics>,
}

impl AnalyzeReport {
    /// The most severe finding present, `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// How many findings sit at or above `severity`.
    pub fn count_at_least(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity >= severity)
            .count()
    }

    /// True when no finding reaches `severity`.
    pub fn clean_at(&self, severity: Severity) -> bool {
        self.count_at_least(severity) == 0
    }

    /// Serializes to the `--report` JSON form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![(
            "findings",
            Json::Array(self.findings.iter().map(Finding::to_json).collect()),
        )];
        if let Some(m) = &self.metrics {
            fields.push(("metrics", m.to_json()));
        }
        Json::object(fields)
    }

    /// Renders the human-readable table (empty string when clean and
    /// metrics-less).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.findings.is_empty() {
            let _ = writeln!(
                out,
                "  {:<8} {:<8} {:>6}  finding",
                "severity", "analysis", "node"
            );
            for f in &self.findings {
                let node = f
                    .node()
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "  {:<8} {:<8} {:>6}  {f}",
                    f.severity, f.analysis, node
                );
            }
        }
        if let Some(m) = &self.metrics {
            let _ = write!(
                out,
                "  metrics: {} inputs, {} outputs, {} ands ({} live, {} dead), depth {}, max fanout {}",
                m.num_inputs, m.num_outputs, m.and_count, m.live_ands, m.dead_ands, m.depth, m.max_fanout
            );
            if let Some(node) = m.max_fanout_node {
                let _ = write!(out, " (node {node})");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// The cheap before/after audit the synthesis pass harness runs as a
/// pre-SAT gate: did this pass *introduce* statically detectable waste?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassDelta {
    /// Dead AND nodes introduced (after minus before, floored at 0).
    pub dead_introduced: u64,
    /// Duplicate AND nodes introduced.
    pub duplicates_introduced: u64,
    /// Ternary-provable constant AND nodes introduced.
    pub constants_introduced: u64,
    /// Structural lint errors in the pass result (absolute, not a
    /// delta: any is disqualifying).
    pub structural_errors: u64,
}

impl PassDelta {
    /// True when the pass introduced nothing the analyses can see.
    pub fn is_clean(&self) -> bool {
        *self == PassDelta::default()
    }
}

impl std::fmt::Display for PassDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "+{} dead, +{} duplicate, +{} constant nodes, {} structural errors",
            self.dead_introduced,
            self.duplicates_introduced,
            self.constants_introduced,
            self.structural_errors
        )
    }
}

fn constant_count(aig: &Aig) -> usize {
    find_ternary_constants(aig)
        .iter()
        .filter(|f| matches!(f.kind, FindingKind::ConstantNode { .. }))
        .count()
}

/// Compares a pass's input and output graphs with the O(n) analyses.
/// If `after` has structural lint errors, only `structural_errors` is
/// meaningful (the semantic counts are skipped, matching the driver).
pub fn audit_pass(before: &Aig, after: &Aig) -> PassDelta {
    let structural_errors = Linter::new()
        .allow_dangling(true)
        .lint(after)
        .iter()
        .filter(|v| v.is_structural())
        .count() as u64;
    if structural_errors > 0 {
        return PassDelta {
            structural_errors,
            ..PassDelta::default()
        };
    }
    let delta = |b: usize, a: usize| (a.saturating_sub(b)) as u64;
    PassDelta {
        dead_introduced: delta(dead_count(before), dead_count(after)),
        duplicates_introduced: delta(duplicate_count(before), duplicate_count(after)),
        constants_introduced: delta(constant_count(before), constant_count(after)),
        structural_errors: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_aig::Edge;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 3);
        let x = aig.xor(inputs[0], inputs[1]);
        let y = aig.mux(inputs[2], x, inputs[0]);
        aig.add_output(y, "f");
        aig
    }

    #[test]
    fn clean_graph_analyzes_clean() {
        let report = Analyzer::new().analyze(&sample());
        assert!(report.clean_at(Severity::Info), "{:?}", report.findings);
        assert!(report.max_severity().is_none());
        assert!(report.metrics.is_some());
        assert!(report.render_table().contains("metrics:"));
    }

    #[test]
    fn findings_sort_most_severe_first() {
        let mut aig = sample();
        // A dead node (warning) plus an out-of-range fanin (error).
        let inputs: Vec<Edge> = (0..2).map(|i| aig.input_edge(i)).collect();
        let dead = aig.and(!inputs[0], !inputs[1]);
        let _ = dead;
        let node = aig.ands().next().map(|(n, _, _)| n).unwrap();
        let mut broken = aig.clone();
        broken.set_fanin_unchecked(node, 0, Edge::from_code(9999));
        let report = Analyzer::new().analyze(&broken);
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert!(report.metrics.is_none(), "broken graph skips metrics");
        assert_eq!(
            report.findings.first().map(|f| f.severity),
            Some(Severity::Error)
        );
    }

    #[test]
    fn structurally_safe_defects_get_full_reports() {
        let mut aig = sample();
        let dead_edge = {
            let inputs: Vec<Edge> = (0..2).map(|i| aig.input_edge(i)).collect();
            aig.and(!inputs[0], !inputs[1])
        };
        let report = Analyzer::new().analyze(&aig);
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        assert_eq!(report.count_at_least(Severity::Warning), 1);
        assert_eq!(
            report.findings[0].kind,
            FindingKind::DeadNode {
                node: dead_edge.node().index()
            }
        );
        let json = report.to_json();
        assert!(json.get("metrics").is_some());
        assert_eq!(
            json.get("findings")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn audit_passes_flag_introduced_defects() {
        let before = sample();
        assert!(audit_pass(&before, &before).is_clean());

        // A "pass" that strands a cone and creates a constant node.
        let mut after = before.clone();
        let first_and = after.ands().next().map(|(n, _, _)| n).unwrap();
        after.set_fanin_unchecked(first_and, 0, Edge::FALSE);
        let delta = audit_pass(&before, &after);
        assert!(!delta.is_clean());
        assert!(delta.constants_introduced >= 1, "{delta}");
        assert_eq!(delta.structural_errors, 0);

        // A "pass" that corrupts the graph outright.
        let mut broken = before.clone();
        broken.set_fanin_unchecked(first_and, 1, Edge::from_code(40_000));
        let delta = audit_pass(&before, &broken);
        assert!(delta.structural_errors >= 1);
    }

    #[test]
    fn severity_parses_and_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!("warning".parse::<Severity>().unwrap(), Severity::Warning);
        assert_eq!("warn".parse::<Severity>().unwrap(), Severity::Warning);
        assert!("fatal".parse::<Severity>().is_err());
    }
}
