//! A generic forward-dataflow engine over the AIG.
//!
//! An analysis supplies the value lattice and the transfer functions
//! for the three node kinds (constant, input, AND) plus edge
//! complement; the engine owns ordering, memoization and propagation.
//!
//! The engine is a classic worklist fixpoint solver: AND values start
//! at the constant-false transfer value, every AND is queued in
//! topological order, and a node whose recomputed value changes
//! requeues its fanouts. Because an AIG is a DAG in topological order
//! and the queue is FIFO, each node's fanins settle before the node is
//! popped, so the fixpoint is reached in exactly one evaluation per
//! AND — the [`DataflowResult::evaluations`] counter makes that
//! observable (and would expose a future IR change that breaks the
//! single-pass property).

use std::collections::VecDeque;

use cirlearn_aig::{Aig, Edge, NodeId};

/// A forward analysis over the AIG: a value domain plus transfer
/// functions. Implementations must be monotone for the engine's
/// fixpoint loop to terminate (trivially true for finite lattices and
/// pointwise functions like ternary AND).
pub trait ForwardAnalysis {
    /// The abstract value attached to every node.
    type Value: Clone + PartialEq;

    /// The value of the constant-false node (node 0).
    fn constant_false(&self) -> Self::Value;

    /// The value of primary input `position` (0-based).
    fn input(&self, position: usize) -> Self::Value;

    /// The value seen through a complemented edge.
    fn complement(&self, value: &Self::Value) -> Self::Value;

    /// The transfer function of an AND node, given its (edge-resolved)
    /// fanin values.
    fn and(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;
}

/// The fixpoint: one abstract value per node, indexed by node id.
#[derive(Debug, Clone)]
pub struct DataflowResult<V> {
    values: Vec<V>,
    /// Transfer-function applications performed before the fixpoint was
    /// reached (exactly the AND count on a well-formed AIG).
    pub evaluations: usize,
}

impl<V: Clone> DataflowResult<V> {
    /// The fixpoint value of `node`.
    pub fn value(&self, node: NodeId) -> &V {
        // panic-ok: `values` holds one slot per node of the analyzed
        // graph; node ids come from that same graph.
        &self.values[node.index()]
    }

    /// The fixpoint value seen through `edge` (complement applied).
    pub fn edge_value<A>(&self, analysis: &A, edge: Edge) -> V
    where
        A: ForwardAnalysis<Value = V>,
    {
        let v = &self.values[edge.node().index()];
        if edge.is_complemented() {
            analysis.complement(v)
        } else {
            v.clone()
        }
    }

    /// All node values, indexed by node id.
    pub fn values(&self) -> &[V] {
        &self.values
    }
}

fn edge_value<A: ForwardAnalysis>(analysis: &A, values: &[A::Value], edge: Edge) -> A::Value {
    let v = &values[edge.node().index()];
    if edge.is_complemented() {
        analysis.complement(v)
    } else {
        v.clone()
    }
}

/// Runs `analysis` forward over `aig` to a fixpoint.
///
/// Requires a structurally well-formed graph (fanins in range and
/// topologically ordered) — the [`Analyzer`](crate::Analyzer) driver
/// lint-gates before calling in here, and skips the dataflow analyses
/// on graphs where simulation itself would be unsafe.
pub fn forward_fixpoint<A: ForwardAnalysis>(aig: &Aig, analysis: &A) -> DataflowResult<A::Value> {
    let n = aig.node_count();
    let first_and = aig.num_inputs() + 1;

    // Seed: constant and input values are final; ANDs start at the
    // constant-false value and are queued for evaluation.
    let mut values: Vec<A::Value> = Vec::with_capacity(n);
    values.push(analysis.constant_false());
    for position in 0..aig.num_inputs() {
        values.push(analysis.input(position));
    }
    values.resize(n, analysis.constant_false());

    // Fanout adjacency for change propagation.
    let mut fanouts: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (node, a, b) in aig.ands() {
        fanouts[a.node().index()].push(node.index());
        if b.node() != a.node() {
            fanouts[b.node().index()].push(node.index());
        }
    }

    let mut worklist: VecDeque<usize> = (first_and..n).collect();
    let mut queued = vec![true; n];
    let mut evaluations = 0usize;
    while let Some(index) = worklist.pop_front() {
        queued[index] = false;
        let node = NodeId::from_index(index);
        let [a, b] = aig.fanins(node);
        let va = edge_value(analysis, &values, a);
        let vb = edge_value(analysis, &values, b);
        let next = analysis.and(&va, &vb);
        evaluations += 1;
        if next != values[index] {
            values[index] = next;
            for &f in &fanouts[index] {
                if !queued[f] {
                    queued[f] = true;
                    worklist.push_back(f);
                }
            }
        }
    }

    DataflowResult {
        values,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concrete boolean simulation as a (degenerate, lattice-of-points)
    /// forward analysis: pins the engine against `Aig::eval_bits`.
    struct ConcreteEval {
        inputs: Vec<bool>,
    }

    impl ForwardAnalysis for ConcreteEval {
        type Value = bool;

        fn constant_false(&self) -> bool {
            false
        }

        fn input(&self, position: usize) -> bool {
            self.inputs[position]
        }

        fn complement(&self, value: &bool) -> bool {
            !*value
        }

        fn and(&self, a: &bool, b: &bool) -> bool {
            *a && *b
        }
    }

    #[test]
    fn engine_agrees_with_concrete_simulation() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 3);
        let x = aig.xor(inputs[0], inputs[1]);
        let y = aig.mux(inputs[2], x, !inputs[0]);
        aig.add_output(y, "f");
        aig.add_output(!x, "g");

        for bits in 0..8u32 {
            let assignment: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expected = aig.eval_bits(&assignment);
            let analysis = ConcreteEval { inputs: assignment };
            let result = forward_fixpoint(&aig, &analysis);
            let got: Vec<bool> = aig
                .outputs()
                .iter()
                .map(|(edge, _)| result.edge_value(&analysis, *edge))
                .collect();
            assert_eq!(got, expected, "assignment {bits:03b}");
        }
    }

    #[test]
    fn topological_fifo_order_converges_in_one_pass_per_node() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 4);
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = aig.xor(acc, i); // 3 ANDs per xor
        }
        aig.add_output(acc, "parity");
        let analysis = ConcreteEval {
            inputs: vec![true; 4],
        };
        let result = forward_fixpoint(&aig, &analysis);
        assert_eq!(result.evaluations, aig.and_count());
    }
}
