//! Static analysis over the AIG intermediate representation.
//!
//! The paper's pipeline validates circuits dynamically — simulation
//! accuracy and SAT equivalence — so structural waste that preserves
//! function (dead cones, duplicated gates, constant-provable nodes)
//! only surfaces as a worse gate count. This crate closes that gap with
//! *static* analyses that run in O(n) over the topologically ordered
//! graph, no SAT calls:
//!
//! - a generic forward-dataflow engine ([`forward_fixpoint`]) over any
//!   lattice an analysis chooses,
//! - **ternary constant propagation** ([`TernaryAnalysis`]): 0/1/X
//!   abstract simulation proving nodes and outputs constant,
//! - **dead-node analysis** ([`find_dead`]): ANDs outside every output
//!   cone,
//! - **duplicate detection** ([`find_duplicates`]): structural-hash
//!   misses (two ANDs with the same ordered fanin pair),
//! - **structural metrics** ([`metrics`]): fanout, depth/levels and
//!   output cone sizes, with a high-fanout finding.
//!
//! Every analysis emits typed [`Finding`]s with node provenance, and
//! the [`Analyzer`] driver unifies them with the structural
//! [`LintViolation`](cirlearn_verify::LintViolation)s from
//! `cirlearn-verify` behind one [`Severity`] scale. Two consumers sit
//! on top: the CLI's `analyze` subcommand (human table / `--report`
//! JSON / `--deny` severity gate) and the synthesis pass harness, which
//! runs [`audit_pass`] as a cheap pre-SAT gate flagging passes that
//! *introduce* defects (counted under `analyze.*` telemetry counters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
mod dead;
mod driver;
mod dup;
mod finding;
mod metrics;
mod ternary;

pub use crate::dataflow::{forward_fixpoint, DataflowResult, ForwardAnalysis};
pub use crate::dead::{find_dead, reachable_nodes};
pub use crate::driver::{audit_pass, AnalyzeConfig, AnalyzeReport, Analyzer, PassDelta};
pub use crate::dup::find_duplicates;
pub use crate::finding::{Finding, FindingKind, Severity};
pub use crate::metrics::{fanout_counts, find_high_fanout, metrics, AigMetrics};
pub use crate::ternary::{find_ternary_constants, ternary_eval, Ternary, TernaryAnalysis};
