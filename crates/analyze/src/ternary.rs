//! Ternary (0/1/X) constant propagation.
//!
//! The value domain is the flat three-point lattice `{0, 1, X}`: a node
//! is `Zero`/`One` when it provably takes that value under *every*
//! assignment of the unconstrained (`X`) inputs, and `X` otherwise.
//! The transfer functions are Kleene's strong three-valued logic:
//! `0 ∧ v = 0` even when `v = X`, so constants propagate through
//! dominated gates arbitrarily deep into the cone.
//!
//! The analysis is sound but (deliberately) incomplete: it is pointwise
//! per node, so it cannot prove `x ∧ ¬x = 0` — that reconvergent case
//! is the linter's `TrivialAnd` and the SAT layer's job. Soundness
//! w.r.t. concrete simulation is property-tested in
//! `tests/ternary_props.rs`.

use cirlearn_aig::Aig;

use crate::dataflow::{forward_fixpoint, ForwardAnalysis};
use crate::dead::reachable_nodes;
use crate::finding::{Finding, FindingKind, Severity};

/// A value in the three-point lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Provably 0 under all assignments of the X inputs.
    Zero,
    /// Provably 1 under all assignments of the X inputs.
    One,
    /// Not provably constant.
    X,
}

/// Kleene negation: flips constants, preserves X.
impl std::ops::Not for Ternary {
    type Output = Ternary;

    fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }
}

impl Ternary {
    /// Kleene conjunction: 0 dominates even an X operand.
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::Zero, _) | (_, Ternary::Zero) => Ternary::Zero,
            (Ternary::One, Ternary::One) => Ternary::One,
            _ => Ternary::X,
        }
    }

    /// The constant this value proves, if any.
    pub fn const_value(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::X => None,
        }
    }

    /// Does concrete `bit` refine this abstract value?
    pub fn admits(self, bit: bool) -> bool {
        match self {
            Ternary::Zero => !bit,
            Ternary::One => bit,
            Ternary::X => true,
        }
    }
}

impl From<bool> for Ternary {
    fn from(b: bool) -> Self {
        if b {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }
}

/// Ternary constant propagation as a [`ForwardAnalysis`]: input values
/// are supplied per run (all-X to ask "which nodes are constant no
/// matter what", or partially pinned to specialize a cone).
#[derive(Debug, Clone)]
pub struct TernaryAnalysis {
    inputs: Vec<Ternary>,
}

impl TernaryAnalysis {
    /// Every input unconstrained: the fixpoint marks exactly the nodes
    /// that are constant under all assignments.
    pub fn unconstrained(num_inputs: usize) -> Self {
        TernaryAnalysis {
            inputs: vec![Ternary::X; num_inputs],
        }
    }

    /// Inputs pinned to the given ternary vector.
    pub fn with_inputs(inputs: Vec<Ternary>) -> Self {
        TernaryAnalysis { inputs }
    }
}

impl ForwardAnalysis for TernaryAnalysis {
    type Value = Ternary;

    fn constant_false(&self) -> Ternary {
        Ternary::Zero
    }

    fn input(&self, position: usize) -> Ternary {
        self.inputs.get(position).copied().unwrap_or(Ternary::X)
    }

    fn complement(&self, value: &Ternary) -> Ternary {
        !*value
    }

    fn and(&self, a: &Ternary, b: &Ternary) -> Ternary {
        a.and(*b)
    }
}

/// Evaluates `aig` under a ternary input vector, returning one value
/// per node. The building block for both [`find_ternary_constants`] and
/// the soundness property tests.
pub fn ternary_eval(aig: &Aig, inputs: &[Ternary]) -> Vec<Ternary> {
    let analysis = TernaryAnalysis::with_inputs(inputs.to_vec());
    let result = forward_fixpoint(aig, &analysis);
    result.values().to_vec()
}

/// Runs unconstrained ternary propagation and reports every *live* AND
/// node that is provably constant, plus every output whose gate logic
/// is provably constant. Dead constant nodes are already covered by the
/// dead-node analysis; outputs wired literally to the constant node are
/// intentional (a learned constant function) and not reported.
pub fn find_ternary_constants(aig: &Aig) -> Vec<Finding> {
    let analysis = TernaryAnalysis::unconstrained(aig.num_inputs());
    let result = forward_fixpoint(aig, &analysis);
    let reachable = reachable_nodes(aig);
    let mut findings = Vec::new();
    for (node, _, _) in aig.ands() {
        if !reachable[node.index()] {
            continue;
        }
        if let Some(value) = result.value(node).const_value() {
            findings.push(Finding {
                analysis: "ternary",
                severity: Severity::Warning,
                kind: FindingKind::ConstantNode {
                    node: node.index(),
                    value,
                },
            });
        }
    }
    for (position, (edge, _)) in aig.outputs().iter().enumerate() {
        if edge.is_const() {
            continue; // literal constant outputs are intentional
        }
        if let Some(value) = result.edge_value(&analysis, *edge).const_value() {
            findings.push(Finding {
                analysis: "ternary",
                severity: Severity::Warning,
                kind: FindingKind::ConstantOutput {
                    output: position,
                    value,
                },
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirlearn_aig::{Edge, NodeId};

    #[test]
    fn kleene_tables() {
        use Ternary::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(One.and(X), X);
        assert_eq!(!X, X);
        assert_eq!(!Zero, One);
        assert!(X.admits(true) && X.admits(false));
        assert!(One.admits(true) && !One.admits(false));
    }

    #[test]
    fn clean_circuit_has_no_constant_findings() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 2);
        let x = aig.xor(inputs[0], inputs[1]);
        aig.add_output(x, "f");
        assert!(find_ternary_constants(&aig).is_empty());
    }

    #[test]
    fn injected_constant_fanin_propagates_through_the_cone() {
        // Build x&y feeding (x&y)&z, then corrupt the deep node's fanin
        // to constant false: both the corrupted node and nothing else
        // must be flagged, and the output driven by it becomes constant.
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 3);
        let xy = aig.and(inputs[0], inputs[1]);
        let xyz = aig.and(xy, inputs[2]);
        aig.add_output(xyz, "f");
        assert!(find_ternary_constants(&aig).is_empty());

        aig.set_fanin_unchecked(xy.node(), 1, Edge::FALSE);
        let findings = find_ternary_constants(&aig);
        let constant_nodes: Vec<usize> = findings
            .iter()
            .filter_map(|f| match f.kind {
                FindingKind::ConstantNode { node, .. } => Some(node),
                _ => None,
            })
            .collect();
        // The corrupted node AND its downstream consumer are both
        // provably zero: the constant propagated through the cone.
        assert_eq!(constant_nodes, vec![xy.node().index(), xyz.node().index()]);
        assert!(findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::ConstantOutput {
                output: 0,
                value: false
            }
        )));
    }

    #[test]
    fn literal_constant_output_is_not_reported() {
        let mut aig = Aig::new();
        let _ = aig.add_inputs("x", 1);
        aig.add_output(Edge::TRUE, "always");
        assert!(find_ternary_constants(&aig).is_empty());
    }

    #[test]
    fn pinned_inputs_specialize_the_cone() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 2);
        let x = aig.and(inputs[0], inputs[1]);
        aig.add_output(x, "f");
        let values = ternary_eval(&aig, &[Ternary::Zero, Ternary::X]);
        assert_eq!(values[x.node().index()], Ternary::Zero);
        let values = ternary_eval(&aig, &[Ternary::One, Ternary::X]);
        assert_eq!(values[x.node().index()], Ternary::X);
        assert_eq!(values[NodeId::CONST.index()], Ternary::Zero);
    }
}
