//! Dead-node analysis: ANDs outside every output cone.
//!
//! The backward counterpart of the forward engine: observability flows
//! from outputs toward inputs, computed as a reverse-topological sweep
//! over the node array. A dead AND computes something no output ever
//! reads — in this pipeline that means a synthesis pass (or the learner
//! itself) materialized structure and then abandoned it without
//! `cleanup()`.

use cirlearn_aig::Aig;

use crate::finding::{Finding, FindingKind, Severity};

/// Which nodes are reachable from at least one primary output, indexed
/// by node id. The constant node and inputs are reported as reachable
/// only if an output cone actually touches them. Out-of-range output or
/// fanin references are ignored (the lint layer owns those).
pub fn reachable_nodes(aig: &Aig) -> Vec<bool> {
    let n = aig.node_count();
    let mut reachable = vec![false; n];
    for (edge, _) in aig.outputs() {
        let index = edge.node().index();
        if index < n {
            reachable[index] = true;
        }
    }
    // Nodes are topologically ordered, so one reverse sweep closes the
    // cone: by the time we visit a node, every path from an output to
    // it has already marked it.
    let first_and = aig.num_inputs() + 1;
    for index in (first_and..n).rev() {
        if !reachable[index] {
            continue;
        }
        let node = cirlearn_aig::NodeId::from_index(index);
        if !aig.is_and(node) {
            continue;
        }
        for edge in aig.fanins(node) {
            let fanin = edge.node().index();
            if fanin < index {
                reachable[fanin] = true;
            }
        }
    }
    reachable
}

/// Reports every AND node unreachable from all outputs.
pub fn find_dead(aig: &Aig) -> Vec<Finding> {
    let reachable = reachable_nodes(aig);
    aig.ands()
        .filter(|(node, _, _)| !reachable[node.index()])
        .map(|(node, _, _)| Finding {
            analysis: "dead",
            severity: Severity::Warning,
            kind: FindingKind::DeadNode { node: node.index() },
        })
        .collect()
}

/// The number of dead AND nodes (the cheap form used by the pass audit).
pub fn dead_count(aig: &Aig) -> usize {
    let reachable = reachable_nodes(aig);
    aig.ands()
        .filter(|(node, _, _)| !reachable[node.index()])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_circuit_has_no_dead_nodes() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 2);
        let x = aig.xor(inputs[0], inputs[1]);
        aig.add_output(x, "f");
        assert!(find_dead(&aig).is_empty());
        assert_eq!(dead_count(&aig), 0);
    }

    #[test]
    fn redirected_output_strands_the_old_cone() {
        // Fault injection: point the only output at an input; the whole
        // former cone goes dead at once.
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 2);
        let x = aig.xor(inputs[0], inputs[1]); // 3 ANDs
        aig.add_output(x, "f");
        aig.set_output_unchecked(0, inputs[0]);
        let findings = find_dead(&aig);
        assert_eq!(findings.len(), aig.and_count());
        assert!(findings
            .iter()
            .all(|f| matches!(f.kind, FindingKind::DeadNode { .. })
                && f.severity == Severity::Warning));
    }

    #[test]
    fn abandoned_gate_is_dead_but_shared_logic_is_not() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 3);
        let live = aig.and(inputs[0], inputs[1]);
        let _abandoned = aig.and(live, inputs[2]); // never wired up
        aig.add_output(live, "f");
        let findings = find_dead(&aig);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].node(), Some(_abandoned.node().index()));
    }
}
