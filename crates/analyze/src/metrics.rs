//! Structural metrics: fanout, levels, cone sizes.
//!
//! Pure observation — the one analysis that reports on healthy graphs
//! too. Everything is Info-severity except nothing: the only finding it
//! emits is `HighFanout`, and only past a configurable threshold.

use cirlearn_aig::Aig;
use cirlearn_telemetry::json::Json;

use crate::dead::reachable_nodes;
use crate::finding::{Finding, FindingKind, Severity};

/// How many references (AND fanin slots plus primary outputs) point at
/// each node, indexed by node id.
pub fn fanout_counts(aig: &Aig) -> Vec<usize> {
    let n = aig.node_count();
    let mut counts = vec![0usize; n];
    for (_, a, b) in aig.ands() {
        for edge in [a, b] {
            let index = edge.node().index();
            if index < n {
                counts[index] += 1;
            }
        }
    }
    for (edge, _) in aig.outputs() {
        let index = edge.node().index();
        if index < n {
            counts[index] += 1;
        }
    }
    counts
}

/// A structural snapshot of one AIG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AigMetrics {
    /// Primary inputs.
    pub num_inputs: usize,
    /// Primary outputs.
    pub num_outputs: usize,
    /// Stored AND nodes (dead or alive).
    pub and_count: usize,
    /// AND nodes reachable from at least one output.
    pub live_ands: usize,
    /// Stored minus live: the dead-node count.
    pub dead_ands: usize,
    /// Longest input→output path in AND gates.
    pub depth: usize,
    /// The largest fanout in the graph and the node carrying it.
    pub max_fanout: usize,
    /// The node with the largest fanout (`None` for an empty graph).
    pub max_fanout_node: Option<usize>,
    /// Per-output cone sizes in AND gates.
    pub output_cones: Vec<usize>,
}

impl AigMetrics {
    /// Serializes to the `--report` JSON form.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("inputs", Json::from(self.num_inputs as u64)),
            ("outputs", Json::from(self.num_outputs as u64)),
            ("ands", Json::from(self.and_count as u64)),
            ("live_ands", Json::from(self.live_ands as u64)),
            ("dead_ands", Json::from(self.dead_ands as u64)),
            ("depth", Json::from(self.depth as u64)),
            ("max_fanout", Json::from(self.max_fanout as u64)),
            (
                "output_cones",
                Json::Array(
                    self.output_cones
                        .iter()
                        .map(|&c| Json::from(c as u64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Computes the structural snapshot of `aig`.
pub fn metrics(aig: &Aig) -> AigMetrics {
    let reachable = reachable_nodes(aig);
    let live_ands = aig
        .ands()
        .filter(|(node, _, _)| reachable[node.index()])
        .count();
    let counts = fanout_counts(aig);
    let (max_fanout_node, max_fanout) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, &c)| (Some(i), c))
        .unwrap_or((None, 0));
    AigMetrics {
        num_inputs: aig.num_inputs(),
        num_outputs: aig.num_outputs(),
        and_count: aig.and_count(),
        live_ands,
        dead_ands: aig.and_count() - live_ands,
        depth: aig.depth(),
        max_fanout,
        max_fanout_node: if max_fanout == 0 {
            None
        } else {
            max_fanout_node
        },
        output_cones: (0..aig.num_outputs())
            .map(|position| aig.output_cone_size(position))
            .collect(),
    }
}

/// Emits an Info finding for every node whose fanout meets `threshold`.
pub fn find_high_fanout(aig: &Aig, threshold: usize) -> Vec<Finding> {
    fanout_counts(aig)
        .into_iter()
        .enumerate()
        .filter(|&(_, fanout)| threshold > 0 && fanout >= threshold)
        .map(|(node, fanout)| Finding {
            analysis: "metrics",
            severity: Severity::Info,
            kind: FindingKind::HighFanout { node, fanout },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_of_a_small_circuit() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 2);
        let x = aig.xor(inputs[0], inputs[1]);
        aig.add_output(x, "f");
        let m = metrics(&aig);
        assert_eq!(m.num_inputs, 2);
        assert_eq!(m.num_outputs, 1);
        assert_eq!(m.and_count, 3);
        assert_eq!(m.live_ands, 3);
        assert_eq!(m.dead_ands, 0);
        assert_eq!(m.depth, 2);
        assert_eq!(m.output_cones, vec![3]);
        // Each input feeds both first-level ANDs of the xor.
        assert_eq!(m.max_fanout, 2);
    }

    #[test]
    fn star_node_trips_the_fanout_threshold() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 5);
        let hub = aig.and(inputs[0], inputs[1]);
        for (i, &input) in inputs[2..].iter().enumerate() {
            let leaf = aig.and(hub, input);
            aig.add_output(leaf, format!("f{i}"));
        }
        let findings = find_high_fanout(&aig, 3);
        assert!(findings
            .iter()
            .any(|f| f.node() == Some(hub.node().index())));
        assert!(findings.iter().all(|f| f.severity == Severity::Info));
        assert!(find_high_fanout(&aig, 100).is_empty());
        assert!(find_high_fanout(&aig, 0).is_empty(), "0 disables the check");
    }

    #[test]
    fn dead_ands_show_up_in_the_snapshot() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 2);
        let live = aig.and(inputs[0], inputs[1]);
        let _dead = aig.and(live, !inputs[0]);
        aig.add_output(live, "f");
        let m = metrics(&aig);
        assert_eq!(m.and_count, 2);
        assert_eq!(m.live_ands, 1);
        assert_eq!(m.dead_ands, 1);
    }
}
