//! Structural-hash duplicate detection.
//!
//! `Aig::and` strashes new gates against the ordered fanin pair, so a
//! graph built through the safe API never holds two ANDs with the same
//! pair. Duplicates appear when a pass rebuilds structure by hand (or a
//! bug bypasses strash) — each one is a gate the canonical form would
//! not pay for. Fanin pairs are normalized (sorted by edge code) before
//! hashing so a mirrored pair still collides.

use std::collections::HashMap;

use cirlearn_aig::Aig;

use crate::finding::{Finding, FindingKind, Severity};

fn normalized_pair(a: cirlearn_aig::Edge, b: cirlearn_aig::Edge) -> (u32, u32) {
    let (x, y) = (a.code(), b.code());
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

/// Reports every AND node whose (normalized) fanin pair already
/// appeared at an earlier node — the later node is the redundant one.
pub fn find_duplicates(aig: &Aig) -> Vec<Finding> {
    let mut seen: HashMap<(u32, u32), usize> = HashMap::with_capacity(aig.and_count());
    let mut findings = Vec::new();
    for (node, a, b) in aig.ands() {
        let key = normalized_pair(a, b);
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(first) => {
                findings.push(Finding {
                    analysis: "dup",
                    severity: Severity::Warning,
                    kind: FindingKind::DuplicateNode {
                        node: node.index(),
                        first: *first.get(),
                    },
                });
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(node.index());
            }
        }
    }
    findings
}

/// The number of duplicate AND nodes (the cheap form used by the pass
/// audit).
pub fn duplicate_count(aig: &Aig) -> usize {
    let mut seen: HashMap<(u32, u32), ()> = HashMap::with_capacity(aig.and_count());
    let mut duplicates = 0;
    for (_, a, b) in aig.ands() {
        if seen.insert(normalized_pair(a, b), ()).is_some() {
            duplicates += 1;
        }
    }
    duplicates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strashed_graphs_are_duplicate_free() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 3);
        let a = aig.and(inputs[0], inputs[1]);
        let b = aig.and(inputs[0], inputs[1]); // strash hit, same edge
        assert_eq!(a, b);
        let x = aig.xor(a, inputs[2]);
        aig.add_output(x, "f");
        assert!(find_duplicates(&aig).is_empty());
        assert_eq!(duplicate_count(&aig), 0);
    }

    #[test]
    fn injected_duplicate_pair_is_flagged() {
        // Fault injection: rewire a distinct AND's fanins to exactly
        // match an earlier node's pair, bypassing strash.
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 3);
        let first = aig.and(inputs[0], inputs[1]);
        let second = aig.and(inputs[1], inputs[2]);
        let out = aig.and(first, second);
        aig.add_output(out, "f");
        assert!(find_duplicates(&aig).is_empty());

        aig.set_fanin_unchecked(second.node(), 0, inputs[0]);
        aig.set_fanin_unchecked(second.node(), 1, inputs[1]);
        let findings = find_duplicates(&aig);
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].kind,
            FindingKind::DuplicateNode {
                node: second.node().index(),
                first: first.node().index(),
            }
        );
        assert_eq!(duplicate_count(&aig), 1);
    }

    #[test]
    fn mirrored_pair_counts_as_duplicate() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs("x", 2);
        let first = aig.and(inputs[0], inputs[1]);
        let second = aig.and(first, inputs[0]);
        aig.add_output(second, "f");
        // Swap the later node's fanins: same pair, mirrored order.
        aig.set_fanin_unchecked(second.node(), 0, inputs[1]);
        aig.set_fanin_unchecked(second.node(), 1, inputs[0]);
        let findings = find_duplicates(&aig);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].node(), Some(second.node().index()));
    }
}
