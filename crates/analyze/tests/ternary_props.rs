//! Soundness of ternary constant propagation w.r.t. concrete simulation.
//!
//! The property: for a random AIG and a random ternary input vector,
//! every concrete assignment *refining* that vector (each X input
//! replaced by an arbitrary bit, pinned inputs kept) must produce, at
//! every node and every output, a value the analyzer's ternary
//! fixpoint admits. In particular an output the analyzer proves
//! constant-0/1 must simulate to exactly that value on all refinements.

use cirlearn_aig::{Aig, Edge};
use cirlearn_analyze::{ternary_eval, Ternary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random AIG through the safe (strashing, folding) API:
/// `gates` attempted ANDs over random existing edges, then 1–2 outputs.
fn random_aig(seed: u64, num_inputs: usize, gates: usize) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut edges: Vec<Edge> = aig.add_inputs("x", num_inputs);
    edges.push(Edge::FALSE);
    for _ in 0..gates {
        let a = edges[rng.gen_range(0..edges.len())].complement_if(rng.gen_bool(0.5));
        let b = edges[rng.gen_range(0..edges.len())].complement_if(rng.gen_bool(0.5));
        let e = aig.and(a, b);
        edges.push(e);
    }
    let num_outputs = rng.gen_range(1..=2usize);
    for i in 0..num_outputs {
        let e = edges[rng.gen_range(0..edges.len())].complement_if(rng.gen_bool(0.5));
        aig.add_output(e, format!("f{i}"));
    }
    aig
}

/// Concrete per-node simulation (independent of the dataflow engine).
fn simulate_nodes(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
    let mut values = vec![false; aig.node_count()];
    for (i, &b) in inputs.iter().enumerate() {
        values[i + 1] = b;
    }
    let eval = |values: &[bool], e: Edge| values[e.node().index()] ^ e.is_complemented();
    for (node, a, b) in aig.ands() {
        values[node.index()] = eval(&values, a) && eval(&values, b);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ternary_fixpoint_admits_every_refinement(
        seed in any::<u64>(),
        num_inputs in 1..=5usize,
        gates in 0..=40usize,
        pins in prop::collection::vec(0..3u8, 5),
        refinements in prop::collection::vec(any::<u64>(), 4),
    ) {
        let aig = random_aig(seed, num_inputs, gates);
        let ternary_inputs: Vec<Ternary> = (0..num_inputs)
            .map(|i| match pins[i] {
                0 => Ternary::Zero,
                1 => Ternary::One,
                _ => Ternary::X,
            })
            .collect();
        let abstract_values = ternary_eval(&aig, &ternary_inputs);

        for &bits in &refinements {
            // A concrete assignment refining the ternary vector: pinned
            // inputs keep their constant, X inputs take arbitrary bits.
            let assignment: Vec<bool> = ternary_inputs
                .iter()
                .enumerate()
                .map(|(i, t)| match t {
                    Ternary::Zero => false,
                    Ternary::One => true,
                    Ternary::X => bits >> i & 1 == 1,
                })
                .collect();
            let concrete = simulate_nodes(&aig, &assignment);
            for (index, (&abst, &conc)) in
                abstract_values.iter().zip(concrete.iter()).enumerate()
            {
                prop_assert!(
                    abst.admits(conc),
                    "node {index}: analyzer proved {abst:?} but simulation gave {conc} \
                     (seed {seed}, inputs {assignment:?})"
                );
            }
            // The headline form: outputs proven constant simulate to
            // exactly that constant.
            let outputs = aig.eval_bits(&assignment);
            for (position, (edge, _)) in aig.outputs().iter().enumerate() {
                let abst = abstract_values[edge.node().index()];
                let abst = if edge.is_complemented() { !abst } else { abst };
                if let Some(value) = abst.const_value() {
                    prop_assert_eq!(
                        outputs[position], value,
                        "output {} proven constant {} but simulated {} (seed {})",
                        position, value, outputs[position], seed
                    );
                }
            }
        }
    }
}
