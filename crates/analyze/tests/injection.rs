//! Fault-injection self-tests: each analysis must catch its defect
//! class when injected through the `cirlearn-verify`-style unchecked
//! mutators (`set_fanin_unchecked` / `set_output_unchecked`), driven
//! through the full `Analyzer` driver rather than the analysis
//! functions in isolation.

use cirlearn_aig::{Aig, Edge};
use cirlearn_analyze::{AnalyzeConfig, Analyzer, Finding, FindingKind, Severity};

/// A healthy little circuit: two outputs over shared logic.
fn healthy() -> Aig {
    let mut aig = Aig::new();
    let inputs = aig.add_inputs("x", 4);
    let a = aig.and(inputs[0], inputs[1]);
    let b = aig.xor(a, inputs[2]);
    let c = aig.mux(inputs[3], b, a);
    aig.add_output(b, "f");
    aig.add_output(c, "g");
    aig
}

fn findings_of(aig: &Aig) -> Vec<Finding> {
    Analyzer::new().analyze(aig).findings
}

#[test]
fn healthy_circuit_is_clean_at_default_severity() {
    let report = Analyzer::new().analyze(&healthy());
    assert!(
        report.clean_at(Severity::Warning),
        "unexpected findings: {:?}",
        report.findings
    );
}

#[test]
fn injected_dead_cone_is_caught_by_the_dead_analysis() {
    let mut aig = healthy();
    // Redirect output 1 at an input: its private cone goes dead.
    aig.set_output_unchecked(1, aig.input_edge(0));
    let findings = findings_of(&aig);
    let dead: Vec<&Finding> = findings
        .iter()
        .filter(|f| matches!(f.kind, FindingKind::DeadNode { .. }))
        .collect();
    assert!(!dead.is_empty(), "dead analysis missed the stranded cone");
    assert!(dead
        .iter()
        .all(|f| f.analysis == "dead" && f.severity == Severity::Warning));
}

#[test]
fn injected_duplicate_pair_is_caught_by_the_dup_analysis() {
    let mut aig = healthy();
    // Rewire the last AND to recompute the first AND's fanin pair.
    let (first, a0, a1) = aig.ands().next().unwrap();
    let last = aig.ands().last().map(|(n, _, _)| n).unwrap();
    aig.set_fanin_unchecked(last, 0, a0);
    aig.set_fanin_unchecked(last, 1, a1);
    let findings = findings_of(&aig);
    assert!(
        findings.iter().any(|f| f.analysis == "dup"
            && f.kind
                == FindingKind::DuplicateNode {
                    node: last.index(),
                    first: first.index(),
                }),
        "dup analysis missed the injected duplicate: {findings:?}"
    );
}

#[test]
fn injected_constant_fanin_is_caught_by_ternary_propagation() {
    let mut aig = healthy();
    let (first, _, _) = aig.ands().next().unwrap();
    aig.set_fanin_unchecked(first, 0, Edge::FALSE);
    let findings = findings_of(&aig);
    assert!(
        findings.iter().any(|f| f.analysis == "ternary"
            && matches!(f.kind, FindingKind::ConstantNode { node, value: false } if node == first.index())),
        "ternary analysis missed the injected constant: {findings:?}"
    );
}

#[test]
fn fanout_hotspot_is_caught_by_the_metrics_analysis() {
    let mut aig = Aig::new();
    let inputs = aig.add_inputs("x", 6);
    let hub = aig.and(inputs[0], inputs[1]);
    for (i, &input) in inputs[2..].iter().enumerate() {
        let leaf = aig.and(hub, input);
        aig.add_output(leaf, format!("f{i}"));
    }
    let analyzer = Analyzer::with_config(AnalyzeConfig {
        fanout_threshold: 4,
        ..AnalyzeConfig::default()
    });
    let report = analyzer.analyze(&aig);
    assert!(
        report.findings.iter().any(|f| f.analysis == "metrics"
            && matches!(f.kind, FindingKind::HighFanout { node, fanout }
                if node == hub.node().index() && fanout >= 4)),
        "metrics analysis missed the fanout hotspot: {:?}",
        report.findings
    );
    // Info findings never trip the default (warning) gate.
    assert!(report.clean_at(Severity::Warning));
    assert!(!report.clean_at(Severity::Info));
}

#[test]
fn structural_corruption_is_caught_by_the_lint_layer() {
    let mut aig = healthy();
    let (first, _, _) = aig.ands().next().unwrap();
    aig.set_fanin_unchecked(first, 0, Edge::from_code(40_000));
    let report = Analyzer::new().analyze(&aig);
    assert_eq!(report.max_severity(), Some(Severity::Error));
    assert!(report
        .findings
        .iter()
        .any(|f| f.analysis == "lint" && f.severity == Severity::Error));
    // On a structurally unsafe graph the semantic analyses must stand
    // down rather than walk out-of-range fanins.
    assert!(report.metrics.is_none());
}

#[test]
fn cleanup_removes_everything_the_analyses_flag() {
    // The export path's guarantee: after `Aig::cleanup()` the graph is
    // analyze-clean at the default severity even if the in-memory
    // source accumulated dead cones.
    let mut aig = healthy();
    let stranded = {
        let a = aig.input_edge(0);
        let b = aig.input_edge(3);
        aig.and(!a, !b)
    };
    let _ = stranded;
    assert!(!Analyzer::new().analyze(&aig).clean_at(Severity::Warning));
    let cleaned = aig.cleanup();
    let report = Analyzer::new().analyze(&cleaned);
    assert!(
        report.clean_at(Severity::Warning),
        "cleanup left analyzable waste: {:?}",
        report.findings
    );
}
