//! A self-contained CDCL SAT solver with AIG bindings.
//!
//! The paper's toolchain relies on ABC, whose fraiging and verification
//! steps are powered by an internal SAT solver. This crate provides the
//! equivalent substrate:
//!
//! * [`Solver`] — a conflict-driven clause-learning solver with two
//!   watched literals, first-UIP learning, VSIDS branching, phase saving
//!   and Luby restarts,
//! * [`AigCnf`] — an incremental Tseitin encoding of an
//!   [`Aig`](cirlearn_aig::Aig) suitable for repeated equivalence
//!   queries (as fraiging issues),
//! * [`check_equivalence`] — a miter-based combinational equivalence
//!   check between two AIGs, returning a counterexample when they
//!   differ.
//!
//! # Examples
//!
//! ```
//! use cirlearn_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a, b]);
//! s.add_clause(&[!a]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert!(s.value(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod dimacs;
mod solver;

pub use cnf::{check_equivalence, AigCnf, Counterexample, Equivalence};
pub use dimacs::ParseDimacsError;
pub use solver::{Lit, SolveResult, Solver};
