//! DIMACS CNF interop.
//!
//! The solver can load the standard `p cnf` format and print formulas
//! back, so it doubles as a standalone SAT tool and can exchange
//! instances with external solvers for cross-checking.

use std::fmt::Write as _;

use crate::{Lit, Solver};

/// Errors from parsing DIMACS CNF text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A token was not an integer literal.
    BadLiteral(String),
    /// A literal references a variable beyond the declared count.
    VarOutOfRange(i64),
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDimacsError::BadHeader(l) => write!(f, "malformed dimacs header: {l}"),
            ParseDimacsError::BadLiteral(t) => write!(f, "not a dimacs literal: {t}"),
            ParseDimacsError::VarOutOfRange(v) => {
                write!(f, "literal {v} beyond the declared variable count")
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

impl Solver {
    /// Builds a solver from DIMACS CNF text.
    ///
    /// Comment lines (`c …`) are skipped; clauses are zero-terminated
    /// integer lists, possibly spanning lines. Returns the solver and
    /// the literals of variables `1..=n` in order (positive phase), so
    /// callers can map DIMACS variable `i` to `lits[i - 1]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseDimacsError`] on the first malformed token.
    ///
    /// # Examples
    ///
    /// ```
    /// use cirlearn_sat::{SolveResult, Solver};
    ///
    /// let (mut solver, lits) = Solver::from_dimacs(
    ///     "c a tiny instance\np cnf 2 2\n1 2 0\n-1 0\n",
    /// )?;
    /// assert_eq!(solver.solve(), SolveResult::Sat);
    /// assert!(solver.value(lits[1])); // x2 must hold
    /// # Ok::<(), cirlearn_sat::ParseDimacsError>(())
    /// ```
    pub fn from_dimacs(text: &str) -> Result<(Solver, Vec<Lit>), ParseDimacsError> {
        let mut solver = Solver::new();
        let mut lits: Vec<Lit> = Vec::new();
        let mut declared = 0usize;
        let mut seen_header = false;
        let mut clause: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('p') {
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.len() != 4 || fields[1] != "cnf" {
                    return Err(ParseDimacsError::BadHeader(line.to_owned()));
                }
                declared = fields[2]
                    .parse()
                    .map_err(|_| ParseDimacsError::BadHeader(line.to_owned()))?;
                lits = (0..declared).map(|_| solver.new_var()).collect();
                seen_header = true;
                continue;
            }
            if !seen_header {
                return Err(ParseDimacsError::BadHeader(line.to_owned()));
            }
            for token in line.split_whitespace() {
                let v: i64 = token
                    .parse()
                    .map_err(|_| ParseDimacsError::BadLiteral(token.to_owned()))?;
                if v == 0 {
                    solver.add_clause(&clause);
                    clause.clear();
                } else {
                    let idx = v.unsigned_abs() as usize;
                    if idx == 0 || idx > declared {
                        return Err(ParseDimacsError::VarOutOfRange(v));
                    }
                    let l = lits[idx - 1];
                    clause.push(if v < 0 { !l } else { l });
                }
            }
        }
        if !clause.is_empty() {
            solver.add_clause(&clause);
        }
        Ok((solver, lits))
    }

    /// Prints the problem clauses (not learned ones) in DIMACS CNF
    /// format.
    ///
    /// Clauses simplified away during [`Solver::add_clause`]
    /// (tautologies, satisfied-at-level-0) are not reproduced; the
    /// printed instance is equisatisfiable with what the solver holds.
    pub fn to_dimacs(&self) -> String {
        let clauses = self.problem_clauses();
        let mut s = format!("p cnf {} {}\n", self.num_vars(), clauses.len());
        for c in clauses {
            for l in c {
                let v = l.var() as i64 + 1;
                let _ = write!(s, "{} ", if l.is_negated() { -v } else { v });
            }
            s.push_str("0\n");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_and_solves() {
        let text = "c comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n";
        let (mut s, lits) = Solver::from_dimacs(text).expect("valid");
        assert_eq!(lits.len(), 3);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.value(lits[0])); // -1 forced
        assert!(!s.value(lits[1])); // 1 -2 with x1 false forces -2
        assert!(s.value(lits[2])); // 2 3 with x2 false forces 3
    }

    #[test]
    fn multiline_clauses() {
        let text = "p cnf 2 1\n1\n2 0\n";
        let (mut s, lits) = Solver::from_dimacs(text).expect("valid");
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(lits[0]) || s.value(lits[1]));
    }

    #[test]
    fn unsat_instance() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let (mut s, _) = Solver::from_dimacs(text).expect("valid");
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            Solver::from_dimacs("p cnf x y\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
        assert!(matches!(
            Solver::from_dimacs("1 2 0\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
        assert!(matches!(
            Solver::from_dimacs("p cnf 1 1\n1 two 0\n"),
            Err(ParseDimacsError::BadLiteral(_))
        ));
        assert!(matches!(
            Solver::from_dimacs("p cnf 1 1\n5 0\n"),
            Err(ParseDimacsError::VarOutOfRange(5))
        ));
    }

    #[test]
    fn roundtrip_preserves_satisfiability() {
        let text = "p cnf 4 4\n1 2 0\n-1 3 0\n-2 -3 0\n3 4 0\n";
        let (s1, _) = Solver::from_dimacs(text).expect("valid");
        let printed = s1.to_dimacs();
        let (mut s2, _) = Solver::from_dimacs(&printed).expect("own output parses");
        let (mut s1, _) = Solver::from_dimacs(text).expect("valid");
        assert_eq!(s1.solve(), s2.solve());
    }
}
