//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! Feature set: two watched literals, first-UIP conflict analysis with
//! backjumping, VSIDS variable activities on an indexed binary heap,
//! phase saving, and Luby-sequence restarts. Learned clauses are kept
//! forever — the instances produced by this workspace (fraig queries,
//! miters of learned circuits) stay small enough that clause deletion
//! would not pay for its complexity.

use std::fmt;

/// A propositional literal, encoded as `2 * var + negated`.
///
/// Created by [`Solver::new_var`]; negate with `!`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Returns the 0-based variable index of this literal.
    pub const fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Returns `true` for a negative-phase literal.
    pub const fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Builds a literal from a variable index and a phase.
    pub const fn from_var(var: u32, negated: bool) -> Self {
        Lit(var << 1 | negated as u32)
    }

    const fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "-{}", self.var() + 1)
        } else {
            write!(f, "{}", self.var() + 1)
        }
    }
}

/// The outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

/// Truth value of a variable during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarValue {
    Unassigned,
    False,
    True,
}

impl VarValue {
    fn of(lit_true: bool) -> Self {
        if lit_true {
            VarValue::True
        } else {
            VarValue::False
        }
    }
}

const NO_REASON: u32 = u32::MAX;

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use cirlearn_sat::{SolveResult, Solver};
///
/// // (a | b) & (!a | b) & (!b)  is unsatisfiable
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a, b]);
/// s.add_clause(&[!a, b]);
/// s.add_clause(&[!b]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    /// Clause arena; learned clauses are appended after problem clauses.
    clauses: Vec<Vec<Lit>>,
    /// For each literal code, the clause indices watching that literal.
    watches: Vec<Vec<u32>>,
    assign: Vec<VarValue>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause index that implied each variable, or `NO_REASON`.
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS.
    activity: Vec<f64>,
    var_inc: f64,
    /// Indexed max-heap of unassigned variables ordered by activity.
    heap: Vec<u32>,
    heap_pos: Vec<usize>,
    saved_phase: Vec<bool>,
    /// Number of problem (non-learned) clauses at the front of the
    /// clause arena.
    problem_clause_count: usize,
    /// Set when a top-level conflict makes the instance trivially UNSAT.
    unsat: bool,
    conflicts: u64,
    /// Temporary marks for conflict analysis.
    seen: Vec<bool>,
}

const HEAP_ABSENT: usize = usize::MAX;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_var(&mut self) -> Lit {
        let v = self.assign.len() as u32;
        self.assign.push(VarValue::Unassigned);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_pos.push(HEAP_ABSENT);
        self.heap_insert(v);
        Lit::from_var(v, false)
    }

    /// Returns the number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Returns the number of clauses (problem plus learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the number of conflicts encountered so far.
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Adds a clause. Returns `false` if the solver is already known to
    /// be unsatisfiable at the top level (the clause may then be
    /// ignored).
    ///
    /// Tautological clauses are dropped; duplicate and false-at-level-0
    /// literals are removed.
    ///
    /// Adding a clause after a `solve` call is allowed (the solver
    /// backtracks to the root level first), which is how incremental
    /// uses like fraiging interleave queries and constraints.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack_to(0);
        if self.unsat {
            return false;
        }
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!((l.var() as usize) < self.num_vars(), "unallocated variable");
            match self.lit_value(l) {
                VarValue::True => return true, // satisfied at level 0
                VarValue::False => continue,   // falsified at level 0: drop literal
                VarValue::Unassigned => {
                    if clause.contains(&!l) {
                        return true; // tautology
                    }
                    if !clause.contains(&l) {
                        clause.push(l);
                    }
                }
            }
        }
        match clause.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(clause[0], NO_REASON);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(clause);
                self.problem_clause_count = self.clauses.len();
                true
            }
        }
    }

    /// Returns the stored problem clauses plus the level-0 facts as
    /// unit clauses — the input formula up to top-level simplification.
    /// After incremental use (clauses added between solves) the prefix
    /// may also include learned clauses; they are implied by the
    /// problem, so the returned set stays logically equivalent.
    pub(crate) fn problem_clauses(&self) -> Vec<Vec<Lit>> {
        let level0_end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        let mut out: Vec<Vec<Lit>> = self.trail[..level0_end].iter().map(|&l| vec![l]).collect();
        out.extend(self.clauses[..self.problem_clause_count].iter().cloned());
        out
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are temporary: they constrain only this call. After
    /// `Sat`, [`Solver::value`] reads the model; after `Unsat` under
    /// nonempty assumptions, the formula itself may still be
    /// satisfiable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }

        let mut restart_idx = 0u32;
        let mut conflicts_until_restart = 100 * luby(restart_idx);
        let result = loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    break SolveResult::Unsat;
                }
                self.analyze_and_learn(conflict);
                if self.conflicts >= conflicts_until_restart {
                    restart_idx += 1;
                    conflicts_until_restart = self.conflicts + 100 * luby(restart_idx);
                    self.backtrack_to(0);
                }
            } else if self.trail_lim.len() < assumptions.len() {
                // (Re-)establish the next assumption as a decision.
                let a = assumptions[self.trail_lim.len()];
                match self.lit_value(a) {
                    VarValue::False => break SolveResult::Unsat,
                    VarValue::True => {
                        // Already implied; open an empty level to keep
                        // assumption indexing aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    VarValue::Unassigned => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, NO_REASON);
                    }
                }
            } else {
                match self.pick_branch_var() {
                    None => break SolveResult::Sat,
                    Some(v) => {
                        let phase = self.saved_phase[v as usize];
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::from_var(v, !phase), NO_REASON);
                    }
                }
            }
        };
        if result == SolveResult::Sat {
            // Save phases for the next call, keep the model readable.
            for v in 0..self.num_vars() {
                self.saved_phase[v] = self.assign[v] == VarValue::True;
            }
        }
        result
    }

    /// Returns the model value of a literal after a `Sat` answer.
    ///
    /// Unassigned variables (possible when the formula does not
    /// constrain them) read as `false`.
    pub fn value(&self, lit: Lit) -> bool {
        matches!(self.lit_value(lit), VarValue::True)
    }

    // ----- internals -------------------------------------------------

    fn lit_value(&self, l: Lit) -> VarValue {
        // panic-ok: literals are validated against `num_vars` when
        // clauses are added; `assign` holds one slot per variable.
        match self.assign[l.var() as usize] {
            VarValue::Unassigned => VarValue::Unassigned,
            VarValue::True => VarValue::of(!l.is_negated()),
            VarValue::False => VarValue::of(l.is_negated()),
        }
    }

    fn attach_clause(&mut self, clause: Vec<Lit>) -> u32 {
        debug_assert!(clause.len() >= 2);
        let idx = self.clauses.len() as u32;
        self.watches[clause[0].code()].push(idx);
        self.watches[clause[1].code()].push(idx);
        self.clauses.push(clause);
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), VarValue::Unassigned);
        let v = l.var() as usize;
        self.assign[v] = VarValue::of(!l.is_negated());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut keep = 0;
            let mut conflict = None;
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                i += 1;
                let first = {
                    let clause = &mut self.clauses[ci as usize];
                    // Normalize: watched false literal in slot 1.
                    if clause[0] == false_lit {
                        clause.swap(0, 1);
                    }
                    debug_assert_eq!(clause[1], false_lit);
                    clause[0]
                };
                if self.lit_value_of(first) == VarValue::True {
                    watch_list[keep] = ci;
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                let clause_len = self.clauses[ci as usize].len();
                for k in 2..clause_len {
                    let q = self.clauses[ci as usize][k];
                    if self.lit_value_of(q) != VarValue::False {
                        self.clauses[ci as usize].swap(1, k);
                        self.watches[q.code()].push(ci);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                watch_list[keep] = ci;
                keep += 1;
                if self.lit_value_of(first) == VarValue::False {
                    // Conflict: keep the remaining watches and stop.
                    while i < watch_list.len() {
                        watch_list[keep] = watch_list[i];
                        keep += 1;
                        i += 1;
                    }
                    conflict = Some(ci);
                    break;
                }
                self.enqueue(first, ci);
            }
            watch_list.truncate(keep);
            self.watches[false_lit.code()] = watch_list;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// `lit_value` without borrowing `self` mutably elsewhere.
    fn lit_value_of(&self, l: Lit) -> VarValue {
        self.lit_value(l)
    }

    /// First-UIP conflict analysis; learns the asserting clause,
    /// backjumps and enqueues the asserting literal.
    ///
    /// The caller must guarantee the conflict happened at a positive
    /// decision level.
    fn analyze_and_learn(&mut self, conflict: u32) {
        let current_level = self.trail_lim.len() as u32;
        debug_assert!(current_level > 0);
        let mut learnt: Vec<Lit> = vec![Lit::from_var(0, false)]; // slot for UIP
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut reason_clause = conflict;
        let mut uip = None;

        loop {
            for k in 0..self.clauses[reason_clause as usize].len() {
                let q = self.clauses[reason_clause as usize][k];
                // Skip the implied literal itself when expanding a
                // reason clause (it is the one being resolved on).
                if Some(q) == uip {
                    continue;
                }
                let v = q.var() as usize;
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                self.seen[v] = true;
                self.bump_var(q.var());
                if self.level[v] == current_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Find the next marked literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var() as usize] {
                    break;
                }
            }
            let p = self.trail[trail_idx];
            self.seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                uip = Some(p);
                break;
            }
            reason_clause = self.reason[p.var() as usize];
            debug_assert_ne!(reason_clause, NO_REASON);
            uip = Some(p);
        }
        let uip = uip.expect("conflict at positive level has a UIP");
        learnt[0] = !uip;

        // Learned-clause minimization (local/basic form): a non-UIP
        // literal is redundant when every literal of its reason clause
        // is itself in the learnt clause (still `seen`) or assigned at
        // level 0 — resolving it away cannot introduce anything new.
        let minimized: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| {
                let reason = self.reason[l.var() as usize];
                if reason == NO_REASON {
                    return true; // a decision: cannot be resolved away
                }
                !self.clauses[reason as usize].iter().all(|&q| {
                    q.var() == l.var()
                        || self.seen[q.var() as usize]
                        || self.level[q.var() as usize] == 0
                })
            })
            .collect();

        // Clear marks of the remaining literals (before truncation so
        // dropped literals are unmarked too).
        for l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        learnt.truncate(1);
        learnt.extend(minimized);

        // Backjump level = second highest level in the learnt clause.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        debug_assert!(backjump < current_level);
        self.backtrack_to(backjump);
        self.decay_activities();

        if learnt.len() == 1 {
            self.enqueue(learnt[0], NO_REASON);
        } else {
            // Watch the asserting literal and one literal of the
            // backjump level.
            let max_pos = learnt[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var() as usize])
                .map(|(i, _)| i + 1)
                .expect("len >= 2");
            learnt.swap(1, max_pos);
            let assert_lit = learnt[0];
            let ci = self.attach_clause(learnt);
            self.enqueue(assert_lit, ci);
        }
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("nonempty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("nonempty");
                let v = l.var() as usize;
                self.saved_phase[v] = self.assign[v] == VarValue::True;
                self.assign[v] = VarValue::Unassigned;
                self.reason[v] = NO_REASON;
                self.heap_insert(l.var());
            }
        }
        // Everything still on the trail was already propagated.
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<u32> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v as usize] == VarValue::Unassigned {
                return Some(v);
            }
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(v);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    // ----- indexed binary max-heap ------------------------------------

    fn heap_less(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn heap_insert(&mut self, v: u32) {
        if self.heap_pos[v as usize] != HEAP_ABSENT {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.heap_pos[top as usize] = HEAP_ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_update(&mut self, v: u32) {
        let pos = self.heap_pos[v as usize];
        if pos != HEAP_ABSENT {
            self.heap_sift_up(pos);
        }
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i] as usize] = i;
        self.heap_pos[self.heap[j] as usize] = j;
    }
}

/// The Luby restart sequence 1,1,2,1,1,2,4,…
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << k) < (i as u64 + 2) {
        k += 1;
    }
    let mut i = i;
    let mut size = (1u64 << k) - 1;
    while size > i as u64 + 1 {
        size /= 2;
        k -= 1;
        if i as u64 >= size {
            i -= size as u32;
        }
    }
    1u64 << (k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u32).map(luby).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(a));
        assert!(!s.value(!a));
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn contradictory_units() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a]);
        s.add_clause(&[!a]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a, !a]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[!w[0], w[1]]); // v_i -> v_{i+1}
        }
        s.add_clause(&[vars[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in &vars {
            assert!(s.value(*v));
        }
    }

    #[test]
    // Indexing `p[i][h]` / `p[j][h]` mirrors the constraint notation.
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][h] = pigeon i in hole h.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for pigeon in &p {
            s.add_clause(pigeon); // every pigeon in some hole
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in i + 1..3 {
                    s.add_clause(&[!p[i][h], !p[j][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.num_conflicts() > 0);
    }

    #[test]
    fn xor_chain_sat_and_model() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 0 : satisfiable.
        let mut s = Solver::new();
        let x: Vec<Lit> = (0..3).map(|_| s.new_var()).collect();
        let xor = |s: &mut Solver, a: Lit, b: Lit, val: bool| {
            if val {
                s.add_clause(&[a, b]);
                s.add_clause(&[!a, !b]);
            } else {
                s.add_clause(&[!a, b]);
                s.add_clause(&[a, !b]);
            }
        };
        xor(&mut s, x[0], x[1], true);
        xor(&mut s, x[1], x[2], true);
        xor(&mut s, x[0], x[2], false);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_ne!(s.value(x[0]), s.value(x[1]));
        assert_ne!(s.value(x[1]), s.value(x[2]));
        assert_eq!(s.value(x[0]), s.value(x[2]));
    }

    #[test]
    fn xor_cycle_odd_unsat() {
        // x1^x2=1, x2^x3=1, x3^x1=1 over a cycle: parity argument fails.
        let mut s = Solver::new();
        let x: Vec<Lit> = (0..3).map(|_| s.new_var()).collect();
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            s.add_clause(&[x[a], x[b]]);
            s.add_clause(&[!x[a], !x[b]]);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_stick() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_with_assumptions(&[!a, !b]), SolveResult::Unsat);
        // Still satisfiable without the assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[!a]), SolveResult::Sat);
        assert!(s.value(b));
    }

    #[test]
    fn assumption_conflicts_with_unit() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a]);
        assert_eq!(s.solve_with_assumptions(&[!a]), SolveResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..60 {
            let n = 8usize;
            let m = rng.gen_range(10..40);
            let clauses: Vec<Vec<(usize, bool)>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            for m in 0..1u32 << n {
                if clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, neg)| (m >> v & 1 == 1) != neg))
                {
                    brute_sat = true;
                    break;
                }
            }
            // Solver.
            let mut s = Solver::new();
            let vars: Vec<Lit> = (0..n).map(|_| s.new_var()).collect();
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&(v, neg)| if neg { !vars[v] } else { vars[v] })
                    .collect();
                s.add_clause(&lits);
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, brute_sat, "round {round}");
            if got {
                // Verify the model.
                for (i, c) in clauses.iter().enumerate() {
                    assert!(
                        c.iter().any(|&(v, neg)| s.value(vars[v]) != neg),
                        "round {round}: model violates clause {i}"
                    );
                }
            }
        }
    }
}
