//! Tseitin encoding of AIGs and equivalence checking.

use cirlearn_aig::{Aig, Edge};
use cirlearn_logic::Assignment;

use crate::{Lit, SolveResult, Solver};

/// An incremental CNF encoding of an [`Aig`].
///
/// Every node gets a solver variable; AND nodes are constrained by the
/// usual three Tseitin clauses. The encoding supports repeated
/// equivalence queries under assumptions, which is how fraiging proves
/// (or refutes) candidate node equivalences without rebuilding the CNF.
///
/// # Examples
///
/// ```
/// use cirlearn_aig::Aig;
/// use cirlearn_sat::{AigCnf, SolveResult};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let ab = aig.and(a, b);
/// let ba = aig.and(b, a); // hashed to the same node
/// aig.add_output(ab, "y");
///
/// let mut cnf = AigCnf::new(&aig);
/// let sel = cnf.add_difference_selector(ab, ba);
/// // The two edges are identical, so asserting a difference is UNSAT.
/// assert_eq!(cnf.solve_with_assumptions(&[sel]), SolveResult::Unsat);
/// ```
#[derive(Debug)]
pub struct AigCnf {
    solver: Solver,
    node_lits: Vec<Lit>,
    num_inputs: usize,
}

impl AigCnf {
    /// Encodes the given AIG.
    pub fn new(aig: &Aig) -> Self {
        let mut solver = Solver::new();
        let input_lits: Vec<Lit> = (0..aig.num_inputs()).map(|_| solver.new_var()).collect();
        let node_lits = encode(&mut solver, aig, &input_lits);
        AigCnf {
            solver,
            node_lits,
            num_inputs: aig.num_inputs(),
        }
    }

    /// Returns the solver literal corresponding to an AIG edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not belong to the encoded AIG.
    pub fn lit(&self, edge: Edge) -> Lit {
        let base = self.node_lits[edge.node().index()];
        if edge.is_complemented() {
            !base
        } else {
            base
        }
    }

    /// Permanently asserts that `edge` evaluates to 1.
    pub fn assert_edge(&mut self, edge: Edge) {
        let l = self.lit(edge);
        self.solver.add_clause(&[l]);
    }

    /// Creates a selector literal `t` with `t → (e1 ≠ e2)`.
    ///
    /// Solving with assumption `t` asks whether the two edges can
    /// differ: `Unsat` proves them functionally equivalent, `Sat` yields
    /// a distinguishing input via [`AigCnf::model_inputs`]. Because the
    /// constraint is guarded by `t`, it is inert in later queries.
    pub fn add_difference_selector(&mut self, e1: Edge, e2: Edge) -> Lit {
        let t = self.solver.new_var();
        let x = self.solver.new_var();
        let (a, b) = (self.lit(e1), self.lit(e2));
        // x <-> a xor b
        self.solver.add_clause(&[!x, a, b]);
        self.solver.add_clause(&[!x, !a, !b]);
        self.solver.add_clause(&[x, !a, b]);
        self.solver.add_clause(&[x, a, !b]);
        // t -> x
        self.solver.add_clause(&[!t, x]);
        t
    }

    /// Solves the current constraints.
    pub fn solve(&mut self) -> SolveResult {
        self.solver.solve()
    }

    /// Solves under assumptions (typically difference selectors).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve_with_assumptions(assumptions)
    }

    /// After `Sat`, extracts the primary-input assignment of the model.
    pub fn model_inputs(&self) -> Assignment {
        Assignment::from_bits(
            self.node_lits[1..=self.num_inputs]
                .iter()
                .map(|&l| self.solver.value(l)),
        )
    }

    /// Gives access to the underlying solver.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }
}

/// Encodes `aig` into `solver`, mapping primary input `k` to
/// `input_lits[k]`. Returns the literal of every node.
fn encode(solver: &mut Solver, aig: &Aig, input_lits: &[Lit]) -> Vec<Lit> {
    assert_eq!(
        input_lits.len(),
        aig.num_inputs(),
        "wrong input literal count"
    );
    let mut node_lits: Vec<Lit> = Vec::with_capacity(aig.node_count());
    // Constant node: a fresh variable pinned to false.
    let const_lit = solver.new_var();
    solver.add_clause(&[!const_lit]);
    node_lits.push(const_lit);
    node_lits.extend_from_slice(input_lits);
    for (_, a, b) in aig.ands() {
        let n = solver.new_var();
        let la = lit_of(&node_lits, a);
        let lb = lit_of(&node_lits, b);
        // n <-> la & lb
        solver.add_clause(&[!n, la]);
        solver.add_clause(&[!n, lb]);
        solver.add_clause(&[n, !la, !lb]);
        node_lits.push(n);
    }
    node_lits
}

fn lit_of(node_lits: &[Lit], e: Edge) -> Lit {
    let base = node_lits[e.node().index()];
    if e.is_complemented() {
        !base
    } else {
        base
    }
}

/// A concrete witness that two circuits differ: an input assignment and
/// the position of an output that disagrees under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The distinguishing primary-input assignment.
    pub inputs: Assignment,
    /// The position of (one) output that differs under `inputs`.
    pub output: usize,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "output {} differs on input {}", self.output, self.inputs)
    }
}

/// The verdict of [`check_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The two circuits compute the same function on every output.
    Equivalent,
    /// A witness on which some output differs.
    Counterexample(Counterexample),
}

impl Equivalence {
    /// Returns `true` for [`Equivalence::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent)
    }

    /// Returns the witness, if the circuits differ.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Equivalence::Equivalent => None,
            Equivalence::Counterexample(cex) => Some(cex),
        }
    }
}

/// Checks combinational equivalence of two AIGs over the same inputs by
/// solving their miter.
///
/// Inputs are matched by position, outputs by position.
///
/// # Panics
///
/// Panics if the two AIGs differ in input or output count.
pub fn check_equivalence(left: &Aig, right: &Aig) -> Equivalence {
    assert_eq!(
        left.num_inputs(),
        right.num_inputs(),
        "circuits have different input counts"
    );
    assert_eq!(
        left.num_outputs(),
        right.num_outputs(),
        "circuits have different output counts"
    );
    let mut solver = Solver::new();
    let input_lits: Vec<Lit> = (0..left.num_inputs()).map(|_| solver.new_var()).collect();
    let l_nodes = encode(&mut solver, left, &input_lits);
    let r_nodes = encode(&mut solver, right, &input_lits);

    // Miter: OR over per-output XORs must be 1.
    let mut xors = Vec::with_capacity(left.num_outputs());
    for (lo, ro) in left.outputs().iter().zip(right.outputs()) {
        let a = lit_of(&l_nodes, lo.0);
        let b = lit_of(&r_nodes, ro.0);
        let x = solver.new_var();
        solver.add_clause(&[!x, a, b]);
        solver.add_clause(&[!x, !a, !b]);
        solver.add_clause(&[x, !a, b]);
        solver.add_clause(&[x, a, !b]);
        xors.push(x);
    }
    solver.add_clause(&xors);

    match solver.solve() {
        SolveResult::Unsat => Equivalence::Equivalent,
        SolveResult::Sat => {
            let inputs = Assignment::from_bits(input_lits.iter().map(|&l| solver.value(l)));
            let bits: Vec<bool> = inputs.iter().collect();
            let (lo, ro) = (left.eval_bits(&bits), right.eval_bits(&bits));
            let output = lo
                .iter()
                .zip(&ro)
                .position(|(a, b)| a != b)
                .expect("SAT model of the miter must distinguish some output");
            Equivalence::Counterexample(Counterexample { inputs, output })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_aig() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.xor(a, b);
        g.add_output(y, "y");
        g
    }

    /// XOR built the "other way": (a|b) & !(a&b).
    fn xor_aig_alt() -> Aig {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let or = g.or(a, b);
        let and = g.and(a, b);
        let y = g.and(or, !and);
        g.add_output(y, "y");
        g
    }

    #[test]
    fn equivalent_structures() {
        assert_eq!(
            check_equivalence(&xor_aig(), &xor_aig_alt()),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn inequivalent_yields_counterexample() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.or(a, b);
        g.add_output(y, "y");
        let verdict = check_equivalence(&xor_aig(), &g);
        match verdict {
            Equivalence::Counterexample(cex) => {
                // XOR and OR differ exactly on a=b=1, on the only output.
                let bits: Vec<bool> = cex.inputs.iter().collect();
                assert_eq!(bits, vec![true, true]);
                assert_eq!(cex.output, 0);
            }
            Equivalence::Equivalent => panic!("xor and or reported equivalent"),
        }
    }

    #[test]
    fn multi_output_equivalence() {
        let build = |swap: bool| {
            let mut g = Aig::new();
            let a = g.add_input("a");
            let b = g.add_input("b");
            let c = g.add_input("c");
            let s = g.xor(a, b);
            let s2 = g.xor(s, c);
            let maj = {
                let ab = g.and(a, b);
                let ac = g.and(a, c);
                let bc = g.and(b, c);
                let t = g.or(ab, ac);
                g.or(t, bc)
            };
            if swap {
                // Same functions built in a different order.
                g.add_output(s2, "sum");
                g.add_output(maj, "carry");
            } else {
                g.add_output(s2, "sum");
                g.add_output(maj, "carry");
            }
            g
        };
        assert!(check_equivalence(&build(false), &build(true)).is_equivalent());
    }

    #[test]
    fn multi_output_difference_detected() {
        let mut g1 = Aig::new();
        let a = g1.add_input("a");
        g1.add_output(a, "y0");
        g1.add_output(!a, "y1");
        let mut g2 = Aig::new();
        let a2 = g2.add_input("a");
        g2.add_output(a2, "y0");
        g2.add_output(a2, "y1"); // differs on y1
        match check_equivalence(&g1, &g2) {
            Equivalence::Counterexample(cex) => {
                let bits: Vec<bool> = cex.inputs.iter().collect();
                // y1 differs whenever !a != a, i.e. always; any input works.
                assert_eq!(bits.len(), 1);
                assert_eq!(cex.output, 1, "the differing output is y1");
            }
            Equivalence::Equivalent => panic!("should differ"),
        }
    }

    #[test]
    fn constant_circuits() {
        let mut g1 = Aig::new();
        let a = g1.add_input("a");
        let f = g1.and(a, !a); // constant 0
        g1.add_output(f, "y");
        let mut g2 = Aig::new();
        let _ = g2.add_input("a");
        g2.add_output(Edge::FALSE, "y");
        assert!(check_equivalence(&g1, &g2).is_equivalent());
        let mut g3 = Aig::new();
        let _ = g3.add_input("a");
        g3.add_output(Edge::TRUE, "y");
        assert!(!check_equivalence(&g1, &g3).is_equivalent());
    }

    #[test]
    fn difference_selector_is_reusable() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f1 = g.and(a, b);
        let f2 = g.and(a, !b);
        let or12 = g.or(f1, f2); // = a
        g.add_output(or12, "y");

        let mut cnf = AigCnf::new(&g);
        // a & b differs from a & !b.
        let s1 = cnf.add_difference_selector(f1, f2);
        assert_eq!(cnf.solve_with_assumptions(&[s1]), SolveResult::Sat);
        let cex = cnf.model_inputs();
        let bits: Vec<bool> = cex.iter().collect();
        assert!(bits[0], "difference requires a=1");
        // or12 is equivalent to input a.
        let s2 = cnf.add_difference_selector(or12, a);
        assert_eq!(cnf.solve_with_assumptions(&[s2]), SolveResult::Unsat);
        // First selector still usable afterwards.
        assert_eq!(cnf.solve_with_assumptions(&[s1]), SolveResult::Sat);
        // And the un-assumed solver remains satisfiable.
        assert_eq!(cnf.solve(), SolveResult::Sat);
    }

    #[test]
    fn assert_edge_pins_output() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let y = g.and(a, b);
        g.add_output(y, "y");
        let mut cnf = AigCnf::new(&g);
        cnf.assert_edge(y);
        assert_eq!(cnf.solve(), SolveResult::Sat);
        let m = cnf.model_inputs();
        let bits: Vec<bool> = m.iter().collect();
        assert_eq!(bits, vec![true, true]);
    }

    #[test]
    fn equivalence_with_counterexample_verified_by_simulation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..20 {
            // Two random 5-input AIGs; compare and verify the verdict by
            // exhaustive simulation.
            let build = |rng: &mut StdRng| {
                let mut g = Aig::new();
                let mut pool: Vec<Edge> = (0..5).map(|i| g.add_input(format!("x{i}"))).collect();
                for _ in 0..15 {
                    let i = rng.gen_range(0..pool.len());
                    let j = rng.gen_range(0..pool.len());
                    let a = pool[i].complement_if(rng.gen_bool(0.5));
                    let b = pool[j].complement_if(rng.gen_bool(0.5));
                    let n = g.and(a, b);
                    pool.push(n);
                }
                let out = *pool.last().expect("nonempty");
                g.add_output(out, "y");
                g
            };
            let g1 = build(&mut rng);
            let g2 = build(&mut rng);
            let verdict = check_equivalence(&g1, &g2);
            let mut truly_equal = true;
            for m in 0..32u32 {
                let bits: Vec<bool> = (0..5).map(|k| m >> k & 1 == 1).collect();
                if g1.eval_bits(&bits) != g2.eval_bits(&bits) {
                    truly_equal = false;
                    break;
                }
            }
            assert_eq!(verdict.is_equivalent(), truly_equal, "round {round}");
            if let Equivalence::Counterexample(cex) = verdict {
                let bits: Vec<bool> = cex.inputs.iter().collect();
                let (o1, o2) = (g1.eval_bits(&bits), g2.eval_bits(&bits));
                assert_ne!(o1, o2, "round {round}: bad cex");
                assert_ne!(
                    o1[cex.output], o2[cex.output],
                    "round {round}: reported output does not differ"
                );
            }
        }
    }
}
